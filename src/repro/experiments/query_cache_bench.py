"""Query-cache benchmark: warm-vs-cold time for a repeated workload.

Measures what the session-scoped :class:`~repro.core.cache.ComputationCache`
buys on realistic query traffic: a mixed workload of UTop-Rank /
UTop-Prefix / UTop-Set / rank-distribution / Rank-Agg queries with
varying ``i``/``j``/``k``/``l`` parameters is run twice over the same
database —

- **cold**: a fresh engine over an empty cache (every plan, pairwise
  integral, sample block, and MCMC walk is paid for);
- **warm**: a *new* engine instance with the same seed sharing the
  now-populated cache (the traffic a long-lived service actually sees).

The two passes must produce byte-identical answers — cached sample
blocks reproduce cold runs bit for bit — so the report also carries an
``answers_identical`` flag computed from the serialized answer streams.

Regenerate the committed report with::

    PYTHONPATH=src python -m repro.experiments.query_cache_bench

which writes ``BENCH_query_cache.json`` at the repository root (schema
below); ``benchmarks/bench_query_cache.py`` and the tier-1 smoke test
reuse :func:`run_benchmark` directly.

Schema::

    {
      "schema": 2,
      "unit": "seconds",
      "host": {"cpu_count": ..., "platform": ..., ...},
      "size": 1000, "queries": 50,
      "cold_seconds": ..., "warm_seconds": ..., "speedup": ...,
      "answers_identical": true,
      "warm_cache": {"hits": ..., "misses": ..., ...}
    }
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.cache import ComputationCache
from ..core.engine import RankingEngine
from ..core.records import UncertainRecord, uniform
from .host import BENCH_SCHEMA, host_block

__all__ = [
    "REPORT_PATH",
    "benchmark_records",
    "workload",
    "run_pass",
    "run_benchmark",
    "write_report",
    "main",
]

#: The committed report, at the repository root next to BENCH_sampling.json.
REPORT_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_query_cache.json"
)

#: A query spec: ``(kind, args)`` consumed by :func:`run_pass`.
QuerySpec = Tuple[str, Tuple[int, ...]]


def benchmark_records(
    n: int, seed: int = 20090107
) -> List[UncertainRecord]:
    """``n`` heavily overlapping uniform-interval records.

    Interval centers are spread over [0, 100] with widths up to ~8, so
    the top region overlaps enough that k-dominance pruning keeps a
    non-trivial candidate set and every sampled path does real work.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 100.0, size=n)
    widths = rng.uniform(0.5, 8.0, size=n)
    return [
        uniform(
            f"r{i:05d}",
            float(centers[i] - widths[i]),
            float(centers[i] + widths[i]),
        )
        for i in range(n)
    ]


def workload(n_queries: int = 50) -> List[QuerySpec]:
    """A mixed, partially repeating query workload.

    Cycles through the five query families while stepping the rank
    range / depth / answer-count parameters through small deterministic
    progressions, so consecutive queries differ in ``i``/``j``/``k``/``l``
    but revisit earlier parameter combinations — the traffic shape the
    cross-query cache is built for.
    """
    specs: List[QuerySpec] = []
    for q in range(n_queries):
        kind = q % 5
        if kind == 0:
            i = 1 + (q // 5) % 3
            j = i + 2 + (q // 10) % 4
            specs.append(("utop_rank", (i, j, 1 + q % 3)))
        elif kind == 1:
            specs.append(("utop_prefix", (2 + (q // 5) % 3, 1 + q % 2)))
        elif kind == 2:
            specs.append(("utop_set", (2 + (q // 5) % 3, 1 + q % 2)))
        elif kind == 3:
            specs.append(("rank_distribution", (q % 7, 5 + (q // 5) % 5)))
        else:
            specs.append(("rank_aggregation", ()))
    return specs


def _execute(engine: RankingEngine, spec: QuerySpec) -> object:
    """Run one spec and return a JSON-encodable answer payload.

    Timing, per-query cache-counter, and planner-schedule fields are
    stripped: the identity check compares *answers*, and those fields
    legitimately differ between a cold and a warm pass (the plan's
    predictions shift as the cost model fits and coverage accrues).
    """
    kind, args = spec
    if kind == "utop_rank":
        i, j, l = args
        result = engine.utop_rank(i, j, l=l)
    elif kind == "utop_prefix":
        k, l = args
        result = engine.utop_prefix(k, l=l)
    elif kind == "utop_set":
        k, l = args
        result = engine.utop_set(k, l=l)
    elif kind == "rank_distribution":
        index, max_rank = args
        record_id = engine.records[index % len(engine.records)].record_id
        return engine.rank_distribution(
            record_id, max_rank=max_rank
        ).tolist()
    elif kind == "rank_aggregation":
        result = engine.rank_aggregation()
    else:
        raise ValueError(f"unknown workload kind {kind!r}")
    payload = result.to_dict()
    payload.pop("elapsed", None)
    payload.pop("cache", None)
    diagnostics = payload.get("diagnostics")
    if isinstance(diagnostics, dict):
        diagnostics.pop("plan", None)
    return payload


def run_pass(
    records: Sequence[UncertainRecord],
    specs: Sequence[QuerySpec],
    cache: ComputationCache,
    seed: int = 0,
    samples: int = 2_000,
    mcmc_chains: int = 4,
    mcmc_steps: int = 400,
    workers: Union[int, str, None] = None,
) -> Tuple[List[object], float, RankingEngine]:
    """Run the workload on a fresh engine over ``cache``.

    Returns ``(answer payloads, elapsed seconds, engine)``. The engine
    is constructed inside the timed region: fingerprinting and seed
    derivation are part of the cost a new session pays.
    """
    start = time.perf_counter()
    engine = RankingEngine(
        records,
        seed=seed,
        cache=cache,
        samples=samples,
        mcmc_chains=mcmc_chains,
        mcmc_steps=mcmc_steps,
        workers=workers,
    )
    answers = [_execute(engine, spec) for spec in specs]
    return answers, time.perf_counter() - start, engine


def run_benchmark(
    size: int = 1_000,
    n_queries: int = 50,
    seed: int = 0,
    samples: int = 2_000,
    mcmc_chains: int = 4,
    mcmc_steps: int = 400,
) -> Dict[str, object]:
    """Cold pass, warm pass, identity check — one report payload."""
    records = benchmark_records(size)
    specs = workload(n_queries)
    cache = ComputationCache()
    cold_answers, cold_seconds, _ = run_pass(
        records,
        specs,
        cache,
        seed=seed,
        samples=samples,
        mcmc_chains=mcmc_chains,
        mcmc_steps=mcmc_steps,
    )
    warm_answers, warm_seconds, warm_engine = run_pass(
        records,
        specs,
        cache,
        seed=seed,
        samples=samples,
        mcmc_chains=mcmc_chains,
        mcmc_steps=mcmc_steps,
    )
    cold_blob = json.dumps(cold_answers, sort_keys=True)
    warm_blob = json.dumps(warm_answers, sort_keys=True)
    return {
        "schema": BENCH_SCHEMA,
        "unit": "seconds",
        "host": host_block(),
        "size": int(size),
        "queries": int(n_queries),
        "samples": int(samples),
        "mcmc_chains": int(mcmc_chains),
        "mcmc_steps": int(mcmc_steps),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": (
            cold_seconds / warm_seconds
            if warm_seconds > 0
            else float("inf")
        ),
        "answers_identical": cold_blob == warm_blob,
        "warm_cache": warm_engine.cache_stats().to_dict(),
    }


def write_report(
    payload: Dict[str, object], path: Optional[Path] = None
) -> Path:
    """Write the report JSON (default: ``BENCH_query_cache.json``)."""
    target = path if path is not None else REPORT_PATH
    target.write_text(json.dumps(payload, indent=2) + "\n")
    return target


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate BENCH_query_cache.json"
    )
    parser.add_argument("--size", type=int, default=1_000)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--samples", type=int, default=2_000)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args(argv)
    payload = run_benchmark(
        size=args.size,
        n_queries=args.queries,
        seed=args.seed,
        samples=args.samples,
    )
    path = write_report(payload, args.out)
    print(
        f"n={payload['size']} queries={payload['queries']}: "
        f"cold {payload['cold_seconds']:.3f}s, "
        f"warm {payload['warm_seconds']:.3f}s "
        f"({payload['speedup']:.1f}x), "
        f"identical={payload['answers_identical']} -> {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
