"""Figure 10 — Monte-Carlo integration vs the BASELINE algorithm.

The paper compares, on the same space-size sweep as Figure 9, the time
Monte-Carlo integration needs (fixed per sample count, flat in the space
size) against BASELINE's enumeration of the prefix tree (exponential in
the space size); at 2.5M prefixes MC used 0.025% of BASELINE's time.

BASELINE here annotates the full prefix tree (Algorithm 1 + Eq. 6 per
leaf); MC computes the same rank-probability matrix from samples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.baseline import BaselineAlgorithm
from ..core.montecarlo import MonteCarloEvaluator
from .harness import format_table, time_call
from .workloads import spaces_by_record_count

__all__ = ["run", "main"]


def run(
    record_counts: Sequence[int] = (6, 7, 8, 9),
    depth: int = 4,
    sample_counts: Sequence[int] = (2_000, 10_000, 30_000),
    seed: int = 20090107,
    baseline_method: str = "exact",
    workload: Optional[List] = None,
) -> List[dict]:
    """One row per space size: BASELINE time and MC times per sample count.

    ``depth`` defaults to 4 (not the paper's 10) to keep the BASELINE
    tree sizes tractable in a test run; pass larger counts/depths to
    push the exponential further out — BASELINE's per-space cost grows
    with the leaf count either way, which is the effect being measured.
    """
    spaces = (
        workload
        if workload is not None
        else spaces_by_record_count(record_counts, depth, seed=seed)
    )
    rows = []
    for subset, n_prefixes, n_nodes in spaces:
        k = min(depth, len(subset))
        baseline = BaselineAlgorithm(
            subset, method=baseline_method, rng=np.random.default_rng(seed)
        )
        _tree, stats = baseline.annotated_tree(k)
        row = {
            "records": len(subset),
            "space_size": n_prefixes,
            "tree_nodes": n_nodes,
            "baseline_seconds": stats.elapsed,
            "baseline_integrals": stats.leaf_integrals,
        }
        for samples in sample_counts:
            sampler = MonteCarloEvaluator(
                subset, rng=np.random.default_rng(seed + samples)
            )
            _m, elapsed = time_call(
                sampler.rank_probability_matrix, samples, k
            )
            row[f"mc_{samples}_seconds"] = elapsed
        rows.append(row)
    return rows


def main() -> None:
    """Print the Figure 10 table."""
    rows = run()
    sample_cols = [c for c in rows[0] if c.startswith("mc_")]
    print("Figure 10 — Monte-Carlo vs BASELINE evaluation time (seconds)")
    print(
        format_table(
            ["records", "space size", "baseline s"]
            + [c.replace("_seconds", " s") for c in sample_cols],
            [
                [r["records"], r["space_size"], r["baseline_seconds"]]
                + [r[c] for c in sample_cols]
                for r in rows
            ],
        )
    )


if __name__ == "__main__":
    main()
