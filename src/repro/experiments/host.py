"""The uniform host block stamped into every ``BENCH_*.json``.

Benchmark numbers only mean something relative to the machine that
produced them — the process backend's throughput scales with cores, and
the planner's wall-clock wins depend on per-host kernel rates — so
every committed report carries the same small provenance block instead
of each writer inventing its own ad-hoc fields.
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict

__all__ = ["BENCH_SCHEMA", "host_block"]

#: Version of the shared ``BENCH_*.json`` envelope: bumped to 2 when
#: the per-writer ``cpu_count`` fields were replaced by this uniform
#: ``host`` block.
BENCH_SCHEMA = 2


def host_block() -> Dict[str, Any]:
    """Provenance of the machine a benchmark report was produced on."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }
