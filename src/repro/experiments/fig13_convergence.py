"""Figure 13 — Markov-chain convergence (Gelman-Rubin statistic vs time).

The paper runs 10 chains with k = 10 on every dataset and plots the time
needed for the Gelman-Rubin statistic to reach successively tighter
values. Expected shape: real datasets (clustered intervals) and most
synthetics converge fast, while Syn-u-0.5's uniformly spread intervals
blow up the prefix space and slow mixing noticeably.

We record the full PSRF trace and report the elapsed time at which each
threshold was first met. (The paper's x-axis runs toward 0.95 with its
statistic normalized below 1; the standard PSRF approaches 1 from above,
so our thresholds descend toward 1.0 — see EXPERIMENTS.md.)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.mcmc import TopKSimulation
from ..core.pruning import shrink_database
from ..core.records import UncertainRecord
from .harness import format_table, paper_suite

__all__ = ["PSRF_TARGETS", "run", "main"]

#: Thresholds at which convergence times are reported (descending
#: toward perfect mixing at 1.0).
PSRF_TARGETS = (1.5, 1.3, 1.2, 1.1, 1.05)

#: Default dataset size. Smaller than the other figures because each
#: MCMC state evaluation costs a Monte-Carlo integral over the pruned
#: database.
DEFAULT_SIZE = 2_000


def run(
    datasets: Optional[Dict[str, List[UncertainRecord]]] = None,
    k: int = 10,
    n_chains: int = 10,
    max_steps: int = 2_500,
    epoch: int = 100,
    pi_samples: int = 500,
    psrf_targets: Sequence[float] = PSRF_TARGETS,
    size: int = DEFAULT_SIZE,
    seed: int = 11,
) -> List[dict]:
    """One row per (dataset, PSRF target): time to reach the target."""
    datasets = datasets if datasets is not None else paper_suite(size)
    rows = []
    for name, records in datasets.items():
        kept = shrink_database(records, k).kept
        sim = TopKSimulation(
            kept,
            k=min(k, len(kept)),
            target="prefix",
            n_chains=n_chains,
            rng=np.random.default_rng(seed),
            oracle="montecarlo",
            pi_samples=pi_samples,
        )
        result = sim.run(
            max_steps=max_steps,
            epoch=epoch,
            psrf_threshold=min(psrf_targets),
            min_epochs=2,
        )
        trace = result.trace
        for target in psrf_targets:
            reached = None
            for psrf, elapsed in zip(trace.psrf, trace.elapsed):
                if psrf <= target:
                    reached = elapsed
                    break
            rows.append(
                {
                    "dataset": name,
                    "pruned_size": len(kept),
                    "psrf_target": target,
                    "seconds": reached,
                    "converged": reached is not None,
                    "final_psrf": trace.psrf[-1] if trace.psrf else None,
                    "total_steps": result.total_steps,
                }
            )
    return rows


def main(size: int = DEFAULT_SIZE) -> None:
    """Print the Figure 13 table."""
    rows = run(size=size)
    print("Figure 13 — chains convergence (time to reach PSRF targets)")
    print(
        format_table(
            ["dataset", "pruned size", "PSRF target", "seconds", "converged"],
            [
                (
                    r["dataset"],
                    r["pruned_size"],
                    r["psrf_target"],
                    r["seconds"] if r["seconds"] is not None else "-",
                    r["converged"],
                )
                for r in rows
            ],
        )
    )


if __name__ == "__main__":
    main()
