"""Shared utilities for the experiment runners.

Keeps dataset construction, timing, and plain-text table rendering in
one place so every ``figXX`` module stays focused on its measurement.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.budget import Budget
from ..core.cache import ComputationCache
from ..core.engine import RankingEngine
from ..core.montecarlo import MonteCarloEvaluator
from ..core.parallel import ParallelSampler
from ..core.records import UncertainRecord
from ..datasets.synthetic import paper_dataset_suite

__all__ = [
    "paper_suite",
    "make_sampler",
    "make_engine",
    "time_call",
    "format_table",
    "DEFAULT_SUITE_SIZE",
]

#: Default per-dataset record count for experiments. The paper uses
#: 100k synthetic / 33k+10k real records; the shapes it measures are
#: already stable at this laptop-friendly scale, and every runner takes
#: a ``size`` parameter for full-scale runs.
DEFAULT_SUITE_SIZE = 20_000


def paper_suite(
    size: int = DEFAULT_SUITE_SIZE, seed: int = 20090107
) -> Dict[str, List[UncertainRecord]]:
    """The five evaluation datasets keyed by their paper names."""
    return paper_dataset_suite(size=size, seed=seed)


def make_sampler(
    records: Sequence[UncertainRecord],
    seed: int = 0,
    workers: Union[int, str, None] = None,
) -> Union[MonteCarloEvaluator, ParallelSampler]:
    """The sampling front-end an experiment should measure.

    ``workers=None`` gives the plain single-evaluator columnar path;
    anything else gives the sharded :class:`ParallelSampler` (whose
    estimates are invariant to the worker count — the knob only moves
    wall-clock time, which is exactly what the timing figures measure).
    """
    if workers is None:
        return MonteCarloEvaluator(records, seed=seed)
    return ParallelSampler(records, seed=seed, workers=workers)


def make_engine(
    source: Union[Sequence[UncertainRecord], object],
    seed: int = 0,
    workers: Union[int, str, None] = None,
    time_limit: Optional[float] = None,
    max_samples: Optional[int] = None,
    cache: Union[ComputationCache, str, None] = None,
    scoring: Optional[object] = None,
    **engine_kwargs: object,
) -> RankingEngine:
    """A :class:`RankingEngine` with an optional resource budget.

    ``source`` is either a sequence of records or an
    :class:`~repro.db.table.UncertainTable`; a table requires a
    ``scoring`` function and is wired up through
    :meth:`~repro.core.engine.RankingEngine.from_table`, so the engine
    follows the table's version counter across mutations.

    ``time_limit`` (seconds) and ``max_samples`` become a
    :class:`~repro.core.budget.Budget` installed as the engine default,
    so every query degrades along the exact → Monte-Carlo → baseline
    ladder instead of overrunning — the configuration an experiment
    measuring anytime behaviour wants. With both limits ``None`` the
    engine is unbudgeted (legacy behaviour).

    ``cache`` selects the computation cache: ``None`` for a private
    per-engine cache (isolated timing, the default an experiment
    usually wants), ``"shared"`` for the process-wide cache, or an
    explicit :class:`~repro.core.cache.ComputationCache` to share one
    cache across a fleet of measured engines (the query-cache
    benchmark's warm passes do exactly that).
    """
    budget = None
    if time_limit is not None or max_samples is not None:
        budget = Budget(deadline=time_limit, max_samples=max_samples)
    shared = dict(
        seed=seed,
        workers=workers,
        budget=budget,
        cache=cache,
        **engine_kwargs,
    )
    if hasattr(source, "to_records") and hasattr(source, "version"):
        if scoring is None:
            raise TypeError(
                "make_engine needs a scoring= function when source is "
                "an UncertainTable"
            )
        return RankingEngine.from_table(source, scoring, **shared)
    if scoring is not None:
        raise TypeError(
            "scoring= only applies when source is an UncertainTable"
        )
    return RankingEngine(source, **shared)


def time_call(fn: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as an aligned plain-text table."""
    table = [[str(h) for h in headers]]
    for row in rows:
        table.append(
            [
                f"{cell:.4g}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [max(len(r[c]) for r in table) for c in range(len(headers))]
    lines = []
    for i, row in enumerate(table):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
