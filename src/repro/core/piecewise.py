"""Piecewise-polynomial function algebra.

This module is the exact-integration substrate used by
:mod:`repro.core.exact` to evaluate the nested integrals of the paper
(Eq. 4 for linear-extension probabilities, Eq. 6 for prefix probabilities)
*symbolically* whenever all score densities are piecewise polynomials
(point masses, uniforms, histograms, and mixtures thereof).

A :class:`PiecewisePolynomial` represents a function on the whole real
line:

- constant ``left`` value for ``x < breakpoints[0]``,
- a polynomial per segment ``[breakpoints[j], breakpoints[j + 1])``
  expressed in the *local* coordinate ``x - breakpoints[j]`` (local
  coordinates keep the arithmetic well conditioned away from the origin),
- constant ``right`` value for ``x >= breakpoints[-1]``.

Functions are right-continuous at breakpoints. Jumps are allowed, which
lets step functions (the CDFs of deterministic scores) participate in the
same algebra as smooth pieces.

Supported operations: evaluation, addition, multiplication, scalar
arithmetic, antiderivatives of compactly supported functions, and definite
integrals. Products and sums align breakpoints automatically.
"""

from __future__ import annotations

from math import comb
from typing import Iterable, Sequence

import numpy as np

from .errors import EvaluationError

__all__ = ["PiecewisePolynomial"]

# Trailing polynomial coefficients with magnitude below this threshold
# (relative to the largest coefficient on the segment) are trimmed.
_TRIM_RTOL = 1e-14


def _trim(coeffs: np.ndarray, width: float = 1.0) -> np.ndarray:
    """Drop negligible trailing coefficients, keeping at least degree 0.

    Negligibility is judged by each term's maximum *contribution* on the
    segment, ``|c_d| * width**d``, not by the raw coefficient: on wide
    segments high-degree coefficients are numerically small yet carry
    large values. Contributions are compared in log space to avoid
    overflow for extreme widths/degrees.
    """
    coeffs = np.asarray(coeffs, dtype=float)
    if coeffs.size == 0:
        return np.zeros(1)
    magnitudes = np.abs(coeffs)
    if not np.any(magnitudes > 0.0):
        return np.zeros(1)
    degrees = np.arange(coeffs.size, dtype=float)
    log_width = np.log(width) if width > 0.0 else 0.0
    with np.errstate(divide="ignore"):
        log_contrib = np.where(
            magnitudes > 0.0, np.log(magnitudes), -np.inf
        ) + degrees * log_width
    threshold = log_contrib.max() + np.log(_TRIM_RTOL)
    keep = coeffs.size
    while keep > 1 and log_contrib[keep - 1] <= threshold:
        keep -= 1
    return coeffs[:keep].copy()


def _shift(coeffs: np.ndarray, delta: float) -> np.ndarray:
    """Re-express ``p(t)`` as a polynomial in ``u`` where ``t = u + delta``.

    If ``p`` has coefficients in the local coordinate anchored at ``a``,
    the result has coefficients anchored at ``a + delta``.
    """
    coeffs = np.asarray(coeffs, dtype=float)
    n = coeffs.size
    # IEEE-exact sentinel: a zero shift means coefficients are already
    # anchored; any nonzero delta must go through the expansion.
    if n == 1 or delta == 0.0:  # reprolint: disable=NUM001
        return coeffs.copy()
    out = np.zeros(n)
    # Binomial expansion of sum_e c_e (u + delta)^e.
    powers = np.ones(n)
    for e in range(1, n):
        powers[e] = powers[e - 1] * delta
    for e in range(n):
        c = coeffs[e]
        # Exact-zero coefficients contribute nothing; skipping them is
        # a pure optimization, never a tolerance decision.
        if c == 0.0:  # reprolint: disable=NUM001
            continue
        for d in range(e + 1):
            out[d] += c * comb(e, d) * powers[e - d]
    return out


def _polyval_local(coeffs: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Evaluate a local-coordinate polynomial at offsets ``u`` (Horner)."""
    result = np.full_like(u, coeffs[-1], dtype=float)
    for c in coeffs[-2::-1]:
        result = result * u + c
    return result


class PiecewisePolynomial:
    """A piecewise-polynomial function over the real line.

    Parameters
    ----------
    breakpoints:
        Strictly increasing sequence of segment boundaries. May contain a
        single point (a pure step function) or be empty together with
        ``left == right`` (a constant function).
    coeffs:
        One coefficient array per segment, ``coeffs[j][d]`` being the
        coefficient of ``(x - breakpoints[j]) ** d``.
    left, right:
        Constant values taken outside the breakpoint range.
    """

    __slots__ = ("breakpoints", "coeffs", "left", "right")

    def __init__(
        self,
        breakpoints: Sequence[float],
        coeffs: Iterable[Sequence[float]],
        left: float = 0.0,
        right: float = 0.0,
    ) -> None:
        bps = np.asarray(breakpoints, dtype=float)
        widths = np.diff(bps) if bps.size >= 2 else np.array([])
        segs = [
            _trim(
                np.asarray(c, dtype=float),
                float(widths[j]) if j < widths.size else 1.0,
            )
            for j, c in enumerate(coeffs)
        ]
        if bps.size == 0:
            if segs:
                raise ValueError("segments given without breakpoints")
            if left != right:
                raise ValueError("a breakpoint-free function must be constant")
        else:
            if np.any(np.diff(bps) <= 0):
                raise ValueError("breakpoints must be strictly increasing")
            if len(segs) != bps.size - 1:
                raise ValueError(
                    f"expected {bps.size - 1} segments, got {len(segs)}"
                )
        self.breakpoints = bps
        self.coeffs = segs
        self.left = float(left)
        self.right = float(right)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def constant(cls, value: float) -> "PiecewisePolynomial":
        """The constant function ``x -> value``."""
        return cls([], [], left=value, right=value)

    @classmethod
    def zero(cls) -> "PiecewisePolynomial":
        """The zero function."""
        return cls.constant(0.0)

    @classmethod
    def step(cls, at: float, height: float) -> "PiecewisePolynomial":
        """A right-continuous step: 0 for ``x < at``, ``height`` after."""
        return cls([at], [], left=0.0, right=height)

    @classmethod
    def box(cls, lo: float, up: float, height: float) -> "PiecewisePolynomial":
        """A box function: ``height`` on ``[lo, up)``, zero elsewhere."""
        if up <= lo:
            raise ValueError("box requires lo < up")
        return cls([lo, up], [[height]], left=0.0, right=0.0)

    @classmethod
    def ramp(cls, lo: float, up: float) -> "PiecewisePolynomial":
        """The CDF of a uniform distribution on ``[lo, up]``."""
        if up <= lo:
            raise ValueError("ramp requires lo < up")
        return cls([lo, up], [[0.0, 1.0 / (up - lo)]], left=0.0, right=1.0)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def __call__(self, x):
        x_arr = np.asarray(x, dtype=float)
        scalar = x_arr.ndim == 0
        x_arr = np.atleast_1d(x_arr)
        out = np.empty_like(x_arr)
        bps = self.breakpoints
        if bps.size == 0:
            out[:] = self.left
        else:
            idx = np.searchsorted(bps, x_arr, side="right") - 1
            out[idx < 0] = self.left
            out[idx >= len(self.coeffs)] = self.right
            for j, seg in enumerate(self.coeffs):
                mask = idx == j
                if np.any(mask):
                    out[mask] = _polyval_local(seg, x_arr[mask] - bps[j])
        return float(out[0]) if scalar else out

    # ------------------------------------------------------------------
    # alignment and arithmetic
    # ------------------------------------------------------------------

    def _segments_on(self, grid: np.ndarray) -> list[np.ndarray]:
        """Express this function as one polynomial per segment of ``grid``.

        ``grid`` must contain all of this function's breakpoints.
        """
        segs: list[np.ndarray] = []
        bps = self.breakpoints
        for j in range(grid.size - 1):
            start = grid[j]
            if bps.size == 0 or start < bps[0]:
                segs.append(np.array([self.left]))
            elif start >= bps[-1]:
                segs.append(np.array([self.right]))
            else:
                k = int(np.searchsorted(bps, start, side="right") - 1)
                segs.append(_shift(self.coeffs[k], start - bps[k]))
        return segs

    @staticmethod
    def _merged_grid(
        a: "PiecewisePolynomial", b: "PiecewisePolynomial"
    ) -> np.ndarray:
        return np.union1d(a.breakpoints, b.breakpoints)

    def _binary(self, other, op) -> "PiecewisePolynomial":
        if not isinstance(other, PiecewisePolynomial):
            other = PiecewisePolynomial.constant(float(other))
        grid = self._merged_grid(self, other)
        if grid.size == 0:
            value = op(np.array([self.left]), np.array([other.left]))
            return PiecewisePolynomial.constant(float(value[0]))
        mine = self._segments_on(grid)
        theirs = other._segments_on(grid)
        coeffs = [op(m, t) for m, t in zip(mine, theirs)]
        left = float(op(np.array([self.left]), np.array([other.left]))[0])
        right = float(op(np.array([self.right]), np.array([other.right]))[0])
        return PiecewisePolynomial(grid, coeffs, left=left, right=right)

    @staticmethod
    def _op_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = max(a.size, b.size)
        out = np.zeros(n)
        out[: a.size] += a
        out[: b.size] += b
        return out

    @staticmethod
    def _op_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.convolve(a, b)

    def __add__(self, other) -> "PiecewisePolynomial":
        return self._binary(other, self._op_add)

    __radd__ = __add__

    def __sub__(self, other) -> "PiecewisePolynomial":
        return self + (-1.0) * (
            other
            if isinstance(other, PiecewisePolynomial)
            else PiecewisePolynomial.constant(float(other))
        )

    def __rsub__(self, other) -> "PiecewisePolynomial":
        return PiecewisePolynomial.constant(float(other)) - self

    def __mul__(self, other) -> "PiecewisePolynomial":
        if isinstance(other, (int, float)):
            factor = float(other)
            return PiecewisePolynomial(
                self.breakpoints,
                [c * factor for c in self.coeffs],
                left=self.left * factor,
                right=self.right * factor,
            )
        return self._binary(other, self._op_mul)

    __rmul__ = __mul__

    def __neg__(self) -> "PiecewisePolynomial":
        return self * -1.0

    # ------------------------------------------------------------------
    # calculus
    # ------------------------------------------------------------------

    def antiderivative(self) -> "PiecewisePolynomial":
        """The antiderivative ``H(x) = integral_{-inf}^{x} h(t) dt``.

        Requires the function to vanish outside its breakpoint range
        (``left == right == 0``), otherwise the integral diverges and an
        :class:`EvaluationError` is raised. The result is continuous, zero
        to the left, and constant (the total integral) to the right.
        """
        # Compact support is a structural property set at construction
        # (exactly 0.0), not a computed float.
        if self.left != 0.0 or self.right != 0.0:  # reprolint: disable=NUM001
            raise EvaluationError(
                "antiderivative requires a compactly supported function "
                f"(left={self.left}, right={self.right})"
            )
        bps = self.breakpoints
        if bps.size == 0:
            return PiecewisePolynomial.zero()
        if bps.size == 1:
            # A function that is zero everywhere except (possibly) a jump
            # value at one point: integral is zero.
            return PiecewisePolynomial.zero()
        coeffs = []
        running = 0.0
        for j, seg in enumerate(self.coeffs):
            degrees = np.arange(1, seg.size + 1, dtype=float)
            integ = np.concatenate(([running], seg / degrees))
            coeffs.append(integ)
            width = bps[j + 1] - bps[j]
            running = float(_polyval_local(integ, np.array([width]))[0])
        return PiecewisePolynomial(bps, coeffs, left=0.0, right=running)

    def integral(self) -> float:
        """Total integral over the real line (function must be compact)."""
        return self.antiderivative().right

    def integrate(self, a: float, b: float) -> float:
        """Definite integral over the finite interval ``[a, b]``."""
        if b < a:
            return -self.integrate(b, a)
        bps = self.breakpoints
        grid_points = [a]
        if bps.size:
            inner = bps[(bps > a) & (bps < b)]
            grid_points.extend(inner.tolist())
        grid_points.append(b)
        total = 0.0
        for lo, up in zip(grid_points[:-1], grid_points[1:]):
            if up <= lo:
                continue
            if bps.size == 0 or lo < bps[0]:
                total += self.left * (up - lo)
            elif lo >= bps[-1]:
                total += self.right * (up - lo)
            else:
                k = int(np.searchsorted(bps, lo, side="right") - 1)
                seg = self.coeffs[k]
                degrees = np.arange(1, seg.size + 1, dtype=float)
                integ = np.concatenate(([0.0], seg / degrees))
                u_lo = lo - bps[k]
                u_up = up - bps[k]
                total += float(
                    _polyval_local(integ, np.array([u_up]))[0]
                    - _polyval_local(integ, np.array([u_lo]))[0]
                )
        return total

    def restrict(self, lo: float, up: float) -> "PiecewisePolynomial":
        """Clamp the representation to the window ``[lo, up]``.

        The result equals this function on ``[lo, up)`` and is zero
        outside. Used to keep segment counts small when the caller will
        multiply by a factor that vanishes outside the window anyway.
        """
        if up <= lo:
            raise ValueError("restrict requires lo < up")
        grid = np.union1d(self.breakpoints, [lo, up])
        grid = grid[(grid >= lo) & (grid <= up)]
        segs = self._segments_on(grid)
        return PiecewisePolynomial(grid, segs, left=0.0, right=0.0)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Maximum polynomial degree across segments (0 for constants)."""
        if not self.coeffs:
            return 0
        return max(c.size - 1 for c in self.coeffs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self.coeffs)
        return (
            f"PiecewisePolynomial({n} segments, degree={self.degree}, "
            f"left={self.left}, right={self.right})"
        )
