"""Process-wide query metrics: counters, gauges, labelled histograms.

The tracing subsystem (:mod:`repro.core.trace`) answers "where did
*this* query spend its time"; this module answers the aggregate
questions — how many queries ran, how many samples were drawn, how
often the cache hit, how often a budget denied work. It is a
zero-dependency, thread-safe metrics registry in the Prometheus idiom:

- **Counters** (monotone sums), **gauges** (last-write-wins values),
  and **fixed-bucket histograms** (cumulative bucket counts plus
  sum/count), each keyed by a metric name and an optional label set —
  e.g. ``query_duration_seconds{query="utop_rank", method="exact"}``.
- A lazily created **global registry** (:func:`global_registry`) plus a
  **contextvar-carried active registry**: the engine installs its own
  registry for the duration of a query (:func:`use_registry`) and every
  emission point below it — cache, budget, samplers, MCMC — writes to
  :func:`active_registry` through the module-level :func:`inc` /
  :func:`observe` / :func:`set_gauge` helpers, so no signatures change
  below the engine. Contextvars do not flow into worker threads; the
  dispatching code in :mod:`repro.core.parallel` and
  :mod:`repro.core.mcmc` re-installs the captured registry inside each
  worker.
- **JSON export** via :meth:`MetricsRegistry.snapshot`.

Metric names emitted by the engine stack are catalogued in
``docs/DEVELOPMENT.md`` ("Observability architecture").
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "active_registry",
    "global_registry",
    "inc",
    "observe",
    "set_gauge",
    "use_registry",
]

#: Default histogram bucket upper bounds (seconds), chosen for query
#: latencies: sub-millisecond cache hits through multi-second MCMC walks.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Canonical (sorted, stringified) label items used as dict keys.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: Any) -> str:
    """One metric value in exposition format (integers without ``.0``)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: Mapping[str, Any]) -> str:
    """``{k="v",...}`` with exposition-format escaping; empty set → ``""``."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(val))}"'
        for key, val in sorted(labels.items())
    )
    return "{" + body + "}"


class _Histogram:
    """One labelled histogram series: bucket counts plus sum/count."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        # One slot per finite bucket plus the +Inf overflow slot.
        self.bucket_counts = [0] * (n_buckets + 1)
        self.total = 0.0
        self.count = 0


class MetricsRegistry:
    """Thread-safe store of labelled counters, gauges, and histograms.

    The process-wide instance (:func:`global_registry`) is the default
    sink; tests and engines wanting isolated accounting construct their
    own and install it per query via :func:`use_registry` (the
    ``RankingEngine(metrics=...)`` knob does exactly that).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[
            str, Tuple[Tuple[float, ...], Dict[LabelKey, _Histogram]]
        ] = {}

    # -- emission ------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` to the counter ``name{labels}``.

        Counters are monotone by convention; negative increments raise
        so a buggy call site cannot silently un-count events.
        """
        if amount < 0:
            raise ValueError(
                f"counter increment must be non-negative, got {amount!r}"
            )
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}`` to ``value`` (last write wins)."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Tuple[float, ...]] = None,
        **labels: Any,
    ) -> None:
        """Record ``value`` into the histogram ``name{labels}``.

        Bucket bounds are fixed at the metric's first observation
        (``buckets`` defaults to :data:`DEFAULT_BUCKETS`); later calls
        reuse the stored bounds so one metric's series stay comparable.
        """
        key = _label_key(labels)
        with self._lock:
            entry = self._histograms.get(name)
            if entry is None:
                bounds = tuple(
                    sorted(buckets if buckets is not None else DEFAULT_BUCKETS)
                )
                entry = (bounds, {})
                self._histograms[name] = entry
            bounds, series = entry
            histogram = series.get(key)
            if histogram is None:
                histogram = _Histogram(len(bounds))
                series[key] = histogram
            slot = len(bounds)
            for index, bound in enumerate(bounds):
                if value <= bound:
                    slot = index
                    break
            histogram.bucket_counts[slot] += 1
            histogram.total += float(value)
            histogram.count += 1

    # -- reading -------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """The counter's value for one exact label set (0.0 if unseen)."""
        key = _label_key(labels)
        with self._lock:
            return self._counters.get(name, {}).get(key, 0.0)

    def counter_total(self, name: str) -> float:
        """The counter's value summed across every label set."""
        with self._lock:
            return float(sum(self._counters.get(name, {}).values()))

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        """The gauge's current value (``None`` if never set)."""
        key = _label_key(labels)
        with self._lock:
            return self._gauges.get(name, {}).get(key)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable dump of every metric series.

        Histogram buckets are exported cumulatively (Prometheus style):
        each entry counts observations ``<= le``, ending with the
        ``"+Inf"`` bucket equal to the total observation count.
        """
        with self._lock:
            counters = {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self._gauges.items())
            }
            histograms: Dict[str, List[Dict[str, Any]]] = {}
            for name, (bounds, series) in sorted(self._histograms.items()):
                rows: List[Dict[str, Any]] = []
                for key, histogram in sorted(series.items()):
                    cumulative = 0
                    buckets: List[Dict[str, Any]] = []
                    for bound, count in zip(
                        bounds, histogram.bucket_counts
                    ):
                        cumulative += count
                        buckets.append({"le": bound, "count": cumulative})
                    buckets.append(
                        {"le": "+Inf", "count": histogram.count}
                    )
                    rows.append(
                        {
                            "labels": dict(key),
                            "buckets": buckets,
                            "sum": histogram.total,
                            "count": histogram.count,
                        }
                    )
                histograms[name] = rows
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_prometheus(self) -> str:
        """Render every series in the Prometheus text exposition format.

        This is the payload behind the serving layer's ``/metrics``
        endpoint: ``# TYPE`` headers per metric, one sample line per
        label set, histograms as cumulative ``_bucket`` series ending in
        ``le="+Inf"`` plus ``_sum``/``_count``. Built from
        :meth:`snapshot` so the JSON and text exports can never drift.
        """
        snap = self.snapshot()
        lines: List[str] = []
        for name, rows in snap["counters"].items():
            lines.append(f"# TYPE {name} counter")
            for row in rows:
                lines.append(
                    f"{name}{_format_labels(row['labels'])} "
                    f"{_format_value(row['value'])}"
                )
        for name, rows in snap["gauges"].items():
            lines.append(f"# TYPE {name} gauge")
            for row in rows:
                lines.append(
                    f"{name}{_format_labels(row['labels'])} "
                    f"{_format_value(row['value'])}"
                )
        for name, rows in snap["histograms"].items():
            lines.append(f"# TYPE {name} histogram")
            for row in rows:
                for bucket in row["buckets"]:
                    bound = bucket["le"]
                    le = bound if bound == "+Inf" else _format_value(bound)
                    labels = dict(row["labels"])
                    labels["le"] = le
                    lines.append(
                        f"{name}_bucket{_format_labels(labels)} "
                        f"{bucket['count']}"
                    )
                base = _format_labels(row["labels"])
                lines.append(f"{name}_sum{base} {_format_value(row['sum'])}")
                lines.append(f"{name}_count{base} {row['count']}")
        return "\n".join(lines) + "\n"

    # -- cross-process marshalling -------------------------------------

    def counter_items(self) -> List[Tuple[str, Dict[str, str], float]]:
        """Flat ``(name, labels, value)`` rows for every counter series.

        This is the wire format worker processes ship home: their
        contextvar sink cannot reach the parent's registry, so each
        worker task runs against a private registry and returns these
        rows for the dispatcher to :meth:`absorb_counters`. Only
        counters travel — they are the sole metric kind the sampling
        and MCMC hot paths emit, and their merge (addition) is exact.
        """
        with self._lock:
            return [
                (name, dict(key), value)
                for name, series in sorted(self._counters.items())
                for key, value in sorted(series.items())
            ]

    def absorb_counters(
        self, rows: List[Tuple[str, Dict[str, str], float]]
    ) -> None:
        """Replay :meth:`counter_items` rows into this registry."""
        for name, labels, value in rows:
            if value > 0:
                self.inc(name, value, **labels)

    def reset(self) -> None:
        """Drop every series (primarily for tests on the global registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# global + active registry plumbing
# ----------------------------------------------------------------------

_GLOBAL_LOCK = threading.Lock()
_GLOBAL: Optional[MetricsRegistry] = None

_ACTIVE_REGISTRY: "contextvars.ContextVar[Optional[MetricsRegistry]]" = (
    contextvars.ContextVar("repro_metrics_registry", default=None)
)


def global_registry() -> MetricsRegistry:
    """The lazily created process-wide registry (the default sink)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL


def active_registry() -> MetricsRegistry:
    """The registry emissions should target in this context.

    The contextvar-installed registry when inside
    :func:`use_registry`, the global registry otherwise. Worker threads
    start with a fresh context, so pool dispatchers capture this value
    and re-install it inside each worker.
    """
    registry = _ACTIVE_REGISTRY.get()
    return registry if registry is not None else global_registry()


@contextmanager
def use_registry(
    registry: Optional[MetricsRegistry],
) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the active sink for the duration.

    ``None`` re-installs the currently active registry (useful for
    propagating whatever is active across a thread hop).
    """
    resolved = registry if registry is not None else active_registry()
    token = _ACTIVE_REGISTRY.set(resolved)
    try:
        yield resolved
    finally:
        _ACTIVE_REGISTRY.reset(token)


def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Increment a counter on the active registry."""
    active_registry().inc(name, amount, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Observe a histogram value on the active registry."""
    active_registry().observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the active registry."""
    active_registry().set_gauge(name, value, **labels)
