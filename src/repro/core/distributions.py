"""Score distributions for records with uncertain scores.

The paper (§II-A) models the score of record ``t_i`` as a probability
density ``f_i`` on an interval ``[lo_i, up_i]``; a deterministic score is a
point interval with probability one. This module provides the density
families used throughout the reproduction:

- :class:`PointScore` — deterministic score.
- :class:`UniformScore` — ``f_i = 1 / (up_i - lo_i)``, the paper's default.
- :class:`HistogramScore` — piecewise-constant density (multiple
  imputations, discretized sensor models).
- :class:`TruncatedGaussianScore` and :class:`TruncatedExponentialScore` —
  smooth families used by the Syn-g / Syn-e synthetic workloads.
- :class:`MixtureScore` — finite mixtures of the above.

Every distribution exposes ``pdf``/``cdf``/``ppf``/``sample``/``mean``.
Families whose pdf is exactly a piecewise polynomial additionally expose
``pdf_piecewise``/``cdf_piecewise``, which is what enables the exact
evaluator in :mod:`repro.core.exact`; smooth families provide
``piecewise_approximation`` to opt into exact evaluation at a chosen
resolution.

For databases of many records, :func:`build_sampling_plan` compiles a
**columnar batch plan**: records are grouped by distribution family and
each group exposes vectorized ``batch_sample`` / ``batch_cdf`` /
``batch_ppf`` kernels over stacked parameter arrays, so a single
RNG/NumPy call replaces one Python-level call per record. The Monte-
Carlo and MCMC evaluators are built on these plans (see
``docs/DEVELOPMENT.md``, "Performance architecture").
"""

from __future__ import annotations

import copy
import hashlib
import math
import pickle
import struct
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import special

from . import shm
from .errors import EvaluationError, ModelError
from .piecewise import PiecewisePolynomial

#: Scalar-or-array input accepted by the vectorized distribution methods.
ArrayLike = Union[float, Sequence[float], np.ndarray]
#: Scalar-in/scalar-out, array-in/array-out result of those methods.
FloatOrArray = Union[float, np.ndarray]
#: numpy-style ``size`` argument for ``sample``.
SizeArg = Optional[Union[int, Tuple[int, ...]]]

__all__ = [
    "ScoreDistribution",
    "ArrayLike",
    "FloatOrArray",
    "PointScore",
    "UniformScore",
    "HistogramScore",
    "DiscreteScore",
    "TriangularScore",
    "TruncatedGaussianScore",
    "TruncatedExponentialScore",
    "MixtureScore",
    "ConvolutionScore",
    "FamilyBatch",
    "SamplingPlan",
    "SharedPlanHandle",
    "build_sampling_plan",
]


class ScoreDistribution(ABC):
    """A probability distribution for one record's uncertain score."""

    #: Inclusive lower bound of the support (``lo_i`` in the paper).
    lower: float
    #: Inclusive upper bound of the support (``up_i`` in the paper).
    upper: float

    @property
    def is_deterministic(self) -> bool:
        """Whether the score is certain (a point interval)."""
        return self.lower == self.upper

    @property
    def width(self) -> float:
        """Length of the score interval."""
        return self.upper - self.lower

    @abstractmethod
    def pdf(self, x: ArrayLike) -> FloatOrArray:
        """Probability density at ``x`` (vectorized)."""

    @abstractmethod
    def cdf(self, x: ArrayLike) -> FloatOrArray:
        """Cumulative probability ``Pr(score <= x)`` (vectorized)."""

    @abstractmethod
    def ppf(self, q: ArrayLike) -> FloatOrArray:
        """Quantile function: smallest ``x`` with ``cdf(x) >= q``."""

    @abstractmethod
    def mean(self) -> float:
        """Expected score."""

    def sample(
        self, rng: np.random.Generator, size: SizeArg = None
    ) -> FloatOrArray:
        """Draw samples via inverse-transform sampling."""
        return self.ppf(rng.random(size))

    @property
    def supports_exact(self) -> bool:
        """Whether the pdf is exactly piecewise polynomial."""
        return False

    def pdf_piecewise(self) -> PiecewisePolynomial:
        """Exact piecewise-polynomial pdf, if the family supports one."""
        raise EvaluationError(
            f"{type(self).__name__} has no exact piecewise-polynomial pdf; "
            "use piecewise_approximation() first"
        )

    def cdf_piecewise(self) -> PiecewisePolynomial:
        """Exact piecewise-polynomial CDF, if the family supports one."""
        return self.pdf_piecewise().antiderivative()

    def piecewise_approximation(self, segments: int = 32) -> "HistogramScore":
        """Histogram approximation with equal-width bins over the support.

        Bin masses are exact CDF increments, so the approximation preserves
        total mass and the support; it converges as ``segments`` grows.
        """
        if self.is_deterministic:
            raise ModelError("a deterministic score needs no approximation")
        edges = np.linspace(self.lower, self.upper, segments + 1)
        masses = np.diff(self.cdf(edges))
        return HistogramScore(edges, masses)

    def fingerprint(self) -> str:
        """Stable content token used in computation-cache keys.

        Families with canonical parameters override this so that two
        parameter-identical instances produce the same token (letting
        the :mod:`repro.core.cache` layer share compiled artifacts
        across separately constructed databases). The fallback is
        identity-based: conservative — it never aliases two different
        models — but unique per instance, so unknown families (custom
        subclasses, fault-injection wrappers) simply never share cache
        entries.
        """
        return f"{type(self).__name__}@{id(self):x}"

    def _check_interval(self) -> None:
        if not (math.isfinite(self.lower) and math.isfinite(self.upper)):
            raise ModelError("score interval bounds must be finite")
        if self.lower > self.upper:
            raise ModelError(
                f"invalid score interval [{self.lower}, {self.upper}]"
            )


def _digest_arrays(label: str, *arrays: np.ndarray) -> str:
    """Blake2b token over raw float buffers (histogram/discrete params)."""
    h = hashlib.blake2b(digest_size=12)
    for arr in arrays:
        h.update(np.ascontiguousarray(arr, dtype=float).tobytes())
    return f"{label}:{h.hexdigest()}"


class PointScore(ScoreDistribution):
    """A deterministic (certain) score: all mass at a single value."""

    def __init__(self, value: float) -> None:
        self.lower = self.upper = float(value)
        self._check_interval()

    @property
    def value(self) -> float:
        """The deterministic score."""
        return self.lower

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        # The density is a Dirac impulse; by convention we report +inf at
        # the point and 0 elsewhere. Exact algorithms special-case points.
        x = np.asarray(x, dtype=float)
        out = np.where(x == self.value, np.inf, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        out = np.where(x >= self.value, 1.0, 0.0)
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        out = np.full_like(q, self.value)
        return float(out) if out.ndim == 0 else out

    def mean(self) -> float:
        return self.value

    @property
    def supports_exact(self) -> bool:
        return True

    def pdf_piecewise(self) -> PiecewisePolynomial:
        raise EvaluationError(
            "a point mass has no density function; exact algorithms must "
            "special-case deterministic scores"
        )

    def cdf_piecewise(self) -> PiecewisePolynomial:
        return PiecewisePolynomial.step(self.value, 1.0)

    def fingerprint(self) -> str:
        return f"point:{self.value!r}"

    def __repr__(self) -> str:
        return f"PointScore({self.value})"


class UniformScore(ScoreDistribution):
    """Uniform density on ``[lo, up]`` — the paper's default model."""

    def __init__(self, lower: float, upper: float) -> None:
        self.lower = float(lower)
        self.upper = float(upper)
        self._check_interval()
        if self.lower == self.upper:
            raise ModelError(
                "degenerate uniform interval; use PointScore instead"
            )
        self._density = 1.0 / (self.upper - self.lower)

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        out = np.where((x >= self.lower) & (x <= self.upper), self._density, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        out = np.clip((x - self.lower) * self._density, 0.0, 1.0)
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        out = self.lower + q * (self.upper - self.lower)
        return float(out) if out.ndim == 0 else out

    def sample(
        self, rng: np.random.Generator, size: SizeArg = None
    ) -> FloatOrArray:
        return rng.uniform(self.lower, self.upper, size)

    def mean(self) -> float:
        return 0.5 * (self.lower + self.upper)

    @property
    def supports_exact(self) -> bool:
        return True

    def pdf_piecewise(self) -> PiecewisePolynomial:
        return PiecewisePolynomial.box(self.lower, self.upper, self._density)

    def cdf_piecewise(self) -> PiecewisePolynomial:
        return PiecewisePolynomial.ramp(self.lower, self.upper)

    def fingerprint(self) -> str:
        return f"uniform:{self.lower!r}:{self.upper!r}"

    def __repr__(self) -> str:
        return f"UniformScore({self.lower}, {self.upper})"


class HistogramScore(ScoreDistribution):
    """Piecewise-constant density defined by bin edges and bin masses."""

    def __init__(self, edges: Sequence[float], masses: Sequence[float]) -> None:
        edges_arr = np.asarray(edges, dtype=float)
        masses_arr = np.asarray(masses, dtype=float)
        if edges_arr.ndim != 1 or edges_arr.size < 2:
            raise ModelError("histogram needs at least two bin edges")
        if np.any(np.diff(edges_arr) <= 0):
            raise ModelError("histogram edges must be strictly increasing")
        if masses_arr.size != edges_arr.size - 1:
            raise ModelError("need one mass per bin")
        if np.any(masses_arr < 0):
            raise ModelError("bin masses must be non-negative")
        total = masses_arr.sum()
        if total <= 0:
            raise ModelError("histogram must carry positive mass")
        self.edges = edges_arr
        self.masses = masses_arr / total
        self.lower = float(edges_arr[0])
        self.upper = float(edges_arr[-1])
        self._check_interval()
        widths = np.diff(edges_arr)
        self._densities = self.masses / widths
        self._cum = np.concatenate(([0.0], np.cumsum(self.masses)))
        # Guard against floating drift in the final cumulative value.
        self._cum[-1] = 1.0

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        idx = np.clip(
            np.searchsorted(self.edges, x, side="right") - 1,
            0,
            self.masses.size - 1,
        )
        out = np.where(
            (x >= self.lower) & (x <= self.upper), self._densities[idx], 0.0
        )
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        idx = np.clip(
            np.searchsorted(self.edges, x, side="right") - 1,
            0,
            self.masses.size - 1,
        )
        within = (x - self.edges[idx]) * self._densities[idx]
        out = np.clip(self._cum[idx] + within, 0.0, 1.0)
        out = np.where(x < self.lower, 0.0, np.where(x > self.upper, 1.0, out))
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        idx = np.clip(
            np.searchsorted(self._cum, q, side="right") - 1,
            0,
            self.masses.size - 1,
        )
        remaining = q - self._cum[idx]
        dens = self._densities[idx]
        offset = np.where(dens > 0, remaining / np.where(dens > 0, dens, 1.0), 0.0)
        out = np.clip(self.edges[idx] + offset, self.lower, self.upper)
        return float(out) if out.ndim == 0 else out

    def mean(self) -> float:
        mids = 0.5 * (self.edges[:-1] + self.edges[1:])
        return float(np.dot(mids, self.masses))

    @property
    def supports_exact(self) -> bool:
        return True

    def pdf_piecewise(self) -> PiecewisePolynomial:
        return PiecewisePolynomial(
            self.edges, [[d] for d in self._densities], left=0.0, right=0.0
        )

    def fingerprint(self) -> str:
        return _digest_arrays("hist", self.edges, self.masses)

    def __repr__(self) -> str:
        return f"HistogramScore({self.masses.size} bins on [{self.lower}, {self.upper}])"


def _norm_cdf(z: ArrayLike) -> np.ndarray:
    return 0.5 * (1.0 + special.erf(np.asarray(z, dtype=float) / math.sqrt(2.0)))


def _norm_ppf(q: ArrayLike) -> np.ndarray:
    return math.sqrt(2.0) * special.erfinv(2.0 * np.asarray(q, dtype=float) - 1.0)


class TruncatedGaussianScore(ScoreDistribution):
    """Gaussian density truncated (and renormalized) to ``[lo, up]``."""

    def __init__(self, mu: float, sigma: float, lower: float, upper: float) -> None:
        if sigma <= 0:
            raise ModelError("sigma must be positive")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.lower = float(lower)
        self.upper = float(upper)
        self._check_interval()
        if self.lower == self.upper:
            raise ModelError(
                "degenerate truncation interval; use PointScore instead"
            )
        self._alpha = (self.lower - self.mu) / self.sigma
        self._beta = (self.upper - self.mu) / self.sigma
        self._z = float(_norm_cdf(self._beta) - _norm_cdf(self._alpha))
        if self._z <= 0:
            raise ModelError("truncation interval carries no Gaussian mass")

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        phi = np.exp(-0.5 * z * z) / (self.sigma * math.sqrt(2.0 * math.pi))
        out = np.where((x >= self.lower) & (x <= self.upper), phi / self._z, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        raw = (_norm_cdf(z) - _norm_cdf(self._alpha)) / self._z
        out = np.clip(raw, 0.0, 1.0)
        out = np.where(x < self.lower, 0.0, np.where(x > self.upper, 1.0, out))
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        base = _norm_cdf(self._alpha) + q * self._z
        out = self.mu + self.sigma * _norm_ppf(base)
        out = np.clip(out, self.lower, self.upper)
        return float(out) if out.ndim == 0 else out

    def mean(self) -> float:
        phi_a = math.exp(-0.5 * self._alpha**2) / math.sqrt(2.0 * math.pi)
        phi_b = math.exp(-0.5 * self._beta**2) / math.sqrt(2.0 * math.pi)
        return self.mu + self.sigma * (phi_a - phi_b) / self._z

    def fingerprint(self) -> str:
        return (
            f"gauss:{self.mu!r}:{self.sigma!r}:{self.lower!r}:{self.upper!r}"
        )

    def __repr__(self) -> str:
        return (
            f"TruncatedGaussianScore(mu={self.mu}, sigma={self.sigma}, "
            f"[{self.lower}, {self.upper}])"
        )


class TruncatedExponentialScore(ScoreDistribution):
    """Exponential density (rate ``lam``, origin ``lo``) truncated to ``[lo, up]``."""

    def __init__(self, rate: float, lower: float, upper: float) -> None:
        if rate <= 0:
            raise ModelError("rate must be positive")
        self.rate = float(rate)
        self.lower = float(lower)
        self.upper = float(upper)
        self._check_interval()
        if self.lower == self.upper:
            raise ModelError(
                "degenerate truncation interval; use PointScore instead"
            )
        self._z = 1.0 - math.exp(-self.rate * (self.upper - self.lower))

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        raw = self.rate * np.exp(-self.rate * (x - self.lower)) / self._z
        out = np.where((x >= self.lower) & (x <= self.upper), raw, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        raw = (1.0 - np.exp(-self.rate * (x - self.lower))) / self._z
        out = np.clip(raw, 0.0, 1.0)
        out = np.where(x < self.lower, 0.0, np.where(x > self.upper, 1.0, out))
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        out = self.lower - np.log1p(-q * self._z) / self.rate
        out = np.clip(out, self.lower, self.upper)
        return float(out) if out.ndim == 0 else out

    def mean(self) -> float:
        width = self.upper - self.lower
        expw = math.exp(-self.rate * width)
        return self.lower + (1.0 / self.rate) - width * expw / self._z

    def fingerprint(self) -> str:
        return f"exp:{self.rate!r}:{self.lower!r}:{self.upper!r}"

    def __repr__(self) -> str:
        return (
            f"TruncatedExponentialScore(rate={self.rate}, "
            f"[{self.lower}, {self.upper}])"
        )


class TriangularScore(ScoreDistribution):
    """Triangular density on ``[lo, up]`` with mode ``mode``.

    The standard elicitation model for "most likely value plus a range"
    (e.g. an expert's rent estimate). Piecewise linear, so it is fully
    supported by the exact evaluator.
    """

    def __init__(self, lower: float, mode: float, upper: float) -> None:
        self.lower = float(lower)
        self.upper = float(upper)
        self.mode = float(mode)
        self._check_interval()
        if self.lower == self.upper:
            raise ModelError(
                "degenerate triangular interval; use PointScore instead"
            )
        if not self.lower <= self.mode <= self.upper:
            raise ModelError(
                f"mode {self.mode} outside [{self.lower}, {self.upper}]"
            )
        self._peak = 2.0 / (self.upper - self.lower)

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        lo, mo, up = self.lower, self.mode, self.upper
        left = np.zeros_like(x)
        if mo > lo:
            left = self._peak * (x - lo) / (mo - lo)
        right = np.zeros_like(x)
        if up > mo:
            right = self._peak * (up - x) / (up - mo)
        out = np.where(
            (x >= lo) & (x <= mo) & (mo > lo),
            left,
            np.where((x > mo) & (x <= up), right, 0.0),
        )
        if mo == lo:
            out = np.where((x >= lo) & (x <= up), right, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        lo, mo, up = self.lower, self.mode, self.upper
        out = np.zeros_like(x)
        if mo > lo:
            rising = (x - lo) ** 2 / ((up - lo) * (mo - lo))
            out = np.where((x >= lo) & (x <= mo), rising, out)
        if up > mo:
            falling = 1.0 - (up - x) ** 2 / ((up - lo) * (up - mo))
            out = np.where((x > mo) & (x <= up), falling, out)
        out = np.where(x > up, 1.0, np.where(x < lo, 0.0, out))
        if mo == lo:
            falling = 1.0 - (up - x) ** 2 / ((up - lo) * (up - mo))
            out = np.where(
                (x >= lo) & (x <= up),
                falling,
                np.where(x > up, 1.0, 0.0),
            )
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        lo, mo, up = self.lower, self.mode, self.upper
        split = (mo - lo) / (up - lo)
        rising = lo + np.sqrt(np.maximum(q, 0.0) * (up - lo) * (mo - lo))
        falling = up - np.sqrt(
            np.maximum(1.0 - q, 0.0) * (up - lo) * (up - mo)
        )
        out = np.where(q <= split, rising, falling)
        out = np.clip(out, lo, up)
        return float(out) if out.ndim == 0 else out

    def mean(self) -> float:
        return (self.lower + self.mode + self.upper) / 3.0

    @property
    def supports_exact(self) -> bool:
        return True

    def pdf_piecewise(self) -> PiecewisePolynomial:
        lo, mo, up = self.lower, self.mode, self.upper
        if mo == lo:
            # Pure descending ramp: p(x) = peak * (up - x) / (up - lo).
            slope = -self._peak / (up - lo)
            return PiecewisePolynomial(
                [lo, up], [[self._peak, slope]], left=0.0, right=0.0
            )
        if mo == up:
            slope = self._peak / (up - lo)
            return PiecewisePolynomial(
                [lo, up], [[0.0, slope]], left=0.0, right=0.0
            )
        rise = self._peak / (mo - lo)
        fall = -self._peak / (up - mo)
        return PiecewisePolynomial(
            [lo, mo, up],
            [[0.0, rise], [self._peak, fall]],
            left=0.0,
            right=0.0,
        )

    def fingerprint(self) -> str:
        return f"tri:{self.lower!r}:{self.mode!r}:{self.upper!r}"

    def __repr__(self) -> str:
        return (
            f"TriangularScore({self.lower}, mode={self.mode}, {self.upper})"
        )


class DiscreteScore(ScoreDistribution):
    """Finitely many candidate scores with weights (multiple imputations).

    Models the machine-learning imputation scenario the paper cites
    (§II-A): a missing attribute filled in with a weighted set of
    candidate values. With a single atom this degenerates to a
    deterministic score.
    """

    def __init__(self, values: Sequence[float], weights: Sequence[float]) -> None:
        vals = np.asarray(values, dtype=float)
        w = np.asarray(weights, dtype=float)
        if vals.ndim != 1 or vals.size == 0:
            raise ModelError("discrete score needs at least one value")
        if w.size != vals.size:
            raise ModelError("need one weight per value")
        if np.any(w <= 0):
            raise ModelError("weights must be positive")
        order = np.argsort(vals)
        vals = vals[order]
        w = w[order]
        if np.any(np.diff(vals) == 0):
            raise ModelError("discrete score values must be distinct")
        self.values = vals
        self.weights = w / w.sum()
        self.lower = float(vals[0])
        self.upper = float(vals[-1])
        self._check_interval()
        self._cum = np.cumsum(self.weights)
        self._cum[-1] = 1.0

    @property
    def is_deterministic(self) -> bool:
        return self.values.size == 1

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        out = np.where(np.isin(x, self.values), np.inf, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        idx = np.searchsorted(self.values, x, side="right")
        cum = np.concatenate(([0.0], self._cum))
        out = cum[idx]
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        idx = np.clip(
            np.searchsorted(self._cum, q, side="left"), 0, self.values.size - 1
        )
        out = self.values[idx]
        return float(out) if out.ndim == 0 else out

    def sample(
        self, rng: np.random.Generator, size: SizeArg = None
    ) -> FloatOrArray:
        return rng.choice(self.values, size=size, p=self.weights)

    def mean(self) -> float:
        return float(np.dot(self.values, self.weights))

    @property
    def supports_exact(self) -> bool:
        # Multi-atom densities are sums of Dirac impulses; only the
        # single-atom (deterministic) case is handled exactly.
        return self.is_deterministic

    def cdf_piecewise(self) -> PiecewisePolynomial:
        out = PiecewisePolynomial.zero()
        for value, weight in zip(self.values, self.weights):
            out = out + PiecewisePolynomial.step(float(value), float(weight))
        return out

    def fingerprint(self) -> str:
        return _digest_arrays("disc", self.values, self.weights)

    def __repr__(self) -> str:
        return f"DiscreteScore({self.values.size} atoms on [{self.lower}, {self.upper}])"


class ConvolutionScore(ScoreDistribution):
    """The distribution of a weighted sum of independent scores.

    The paper defines scoring functions "on one or more scoring
    predicates"; when several predicates are uncertain, the record's
    total score is a sum of independent uncertain terms, whose
    distribution is the convolution of the components.

    Sampling is exact (sum of component samples). ``pdf``/``cdf``/``ppf``
    are computed once on a fine FFT grid and interpolated; accuracy is
    controlled by ``grid_points``. The family is not exactly piecewise
    polynomial (``supports_exact`` is ``False``), but
    ``piecewise_approximation`` bridges to the exact engine.
    """

    def __init__(
        self,
        components: Sequence[ScoreDistribution],
        weights: Optional[Sequence[float]] = None,
        grid_points: int = 4096,
    ) -> None:
        if not components:
            raise ModelError("convolution needs at least one component")
        if weights is None:
            weights = [1.0] * len(components)
        if len(weights) != len(components):
            raise ModelError("need one weight per component")
        w = np.asarray(weights, dtype=float)
        if np.any(w == 0.0):  # reprolint: disable=NUM001 -- exact zero-weight sentinel
            raise ModelError("convolution weights must be non-zero")
        if grid_points < 16:
            raise ModelError("grid_points must be at least 16")
        self.components = list(components)
        self.weights = w
        lows = []
        highs = []
        for comp, weight in zip(self.components, w):
            a, b = weight * comp.lower, weight * comp.upper
            lows.append(min(a, b))
            highs.append(max(a, b))
        self.lower = float(sum(lows))
        self.upper = float(sum(highs))
        self._check_interval()
        if self.lower == self.upper:
            raise ModelError(
                "degenerate convolution; use PointScore instead"
            )
        self._build_grid(grid_points)

    def _build_grid(self, grid_points: int) -> None:
        """Tabulate the sum's CDF by FFT convolution of component PMFs."""
        span = self.upper - self.lower
        # Padded grid to avoid circular-convolution wrap-around.
        step = span / (grid_points - 1)
        pmf = None
        size = 2 * grid_points
        for comp, weight in zip(self.components, self.weights):
            if comp.is_deterministic:
                # A certain term is a pure shift, already folded into
                # ``self.lower`` — no discretization needed.
                continue
            # Component contribution on its own axis, discretized by
            # exact CDF increments so no mass is lost.
            edges = np.arange(size + 1) * step
            if weight >= 0:
                values = np.asarray(comp.cdf(comp.lower + edges / weight))
            else:
                values = 1.0 - np.asarray(
                    comp.cdf(comp.upper + edges / weight)
                )
            values = np.clip(values, 0.0, 1.0)
            # The leftmost edge is the support's start: no mass below it.
            values[0] = 0.0
            masses = np.maximum(np.diff(values), 0.0)
            if masses.sum() > 0:
                masses = masses / masses.sum()
            pmf = masses if pmf is None else np.convolve(pmf, masses)[:size]
        if pmf is None:
            # All components deterministic: excluded by the degenerate
            # check in __init__, but keep a defensive uniform spike.
            pmf = np.zeros(size)
            pmf[0] = 1.0
        cum = np.cumsum(pmf)
        cum = np.clip(cum / cum[-1], 0.0, 1.0)
        self._grid_x = self.lower + np.arange(cum.size) * step
        self._grid_cdf = cum
        self._step = step

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        eps = self._step
        out = (self.cdf(x + eps / 2) - self.cdf(x - eps / 2)) / eps
        out = np.where((x >= self.lower) & (x <= self.upper), out, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        out = np.interp(
            x, self._grid_x, self._grid_cdf, left=0.0, right=1.0
        )
        return float(out) if out.ndim == 0 else out

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q = np.asarray(q, dtype=float)
        out = np.interp(q, self._grid_cdf, self._grid_x)
        out = np.clip(out, self.lower, self.upper)
        return float(out) if out.ndim == 0 else out

    def sample(
        self, rng: np.random.Generator, size: SizeArg = None
    ) -> FloatOrArray:
        total = None
        for comp, weight in zip(self.components, self.weights):
            draw = np.asarray(comp.sample(rng, size), dtype=float) * weight
            total = draw if total is None else total + draw
        return total if size is not None else float(total)

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )

    def fingerprint(self) -> str:
        inner = ",".join(c.fingerprint() for c in self.components)
        weights = _digest_arrays("w", self.weights)
        return f"conv:[{inner}]:{weights}:g{self._grid_x.size}"

    def __repr__(self) -> str:
        return (
            f"ConvolutionScore({len(self.components)} components on "
            f"[{self.lower:.4g}, {self.upper:.4g}])"
        )


class MixtureScore(ScoreDistribution):
    """Finite mixture of score distributions with positive weights."""

    def __init__(
        self,
        components: Sequence[ScoreDistribution],
        weights: Sequence[float],
    ) -> None:
        if not components:
            raise ModelError("mixture needs at least one component")
        if len(components) != len(weights):
            raise ModelError("need one weight per component")
        w = np.asarray(weights, dtype=float)
        if np.any(w <= 0):
            raise ModelError("mixture weights must be positive")
        self.components = list(components)
        self.weights = w / w.sum()
        self.lower = min(c.lower for c in components)
        self.upper = max(c.upper for c in components)
        self._check_interval()

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        out = sum(
            w * c.pdf(x) for w, c in zip(self.weights, self.components)
        )
        return float(out) if np.ndim(out) == 0 else np.asarray(out)

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        x = np.asarray(x, dtype=float)
        out = sum(
            w * c.cdf(x) for w, c in zip(self.weights, self.components)
        )
        return float(out) if np.ndim(out) == 0 else np.asarray(out)

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        q_arr = np.atleast_1d(np.asarray(q, dtype=float))
        out = np.empty_like(q_arr)
        for i, qi in enumerate(q_arr):
            lo, hi = self.lower, self.upper
            # Bisection against the mixture CDF: 60 iterations give ~1e-18
            # relative bracketing, far below any downstream tolerance.
            for _ in range(60):
                mid = 0.5 * (lo + hi)
                if self.cdf(mid) < qi:
                    lo = mid
                else:
                    hi = mid
            out[i] = 0.5 * (lo + hi)
        return float(out[0]) if np.ndim(q) == 0 else out

    def sample(
        self, rng: np.random.Generator, size: SizeArg = None
    ) -> FloatOrArray:
        if size is None:
            idx = rng.choice(len(self.components), p=self.weights)
            return self.components[idx].sample(rng)
        n = int(np.prod(size))
        idx = rng.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n)
        for j, comp in enumerate(self.components):
            mask = idx == j
            count = int(mask.sum())
            if count:
                out[mask] = np.atleast_1d(comp.sample(rng, count))
        return out.reshape(size)

    def mean(self) -> float:
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )

    @property
    def supports_exact(self) -> bool:
        return all(
            c.supports_exact and not c.is_deterministic for c in self.components
        )

    def pdf_piecewise(self) -> PiecewisePolynomial:
        if not self.supports_exact:
            return super().pdf_piecewise()
        out = PiecewisePolynomial.zero()
        for w, comp in zip(self.weights, self.components):
            out = out + comp.pdf_piecewise() * float(w)
        return out

    def fingerprint(self) -> str:
        inner = ",".join(c.fingerprint() for c in self.components)
        return f"mix:[{inner}]:{_digest_arrays('w', self.weights)}"

    def __repr__(self) -> str:
        return f"MixtureScore({len(self.components)} components)"


# ----------------------------------------------------------------------
# Columnar batch plans
# ----------------------------------------------------------------------


class FamilyBatch(ABC):
    """Vectorized kernels for one group of same-family score densities.

    A batch owns the stacked parameters of ``m`` distributions plus the
    database columns they occupy, and evaluates all of them with a
    constant number of NumPy calls. ``x`` inputs to :meth:`batch_cdf`
    are one threshold per sample row (shape ``(s,)``); uniform draws to
    :meth:`batch_ppf` are per sample *and* record (shape ``(s, m)``).
    """

    #: Family key used for grouping and introspection.
    family: str = ""

    def __init__(self, indices: Sequence[int]) -> None:
        self.indices = np.asarray(indices, dtype=np.intp)

    def __len__(self) -> int:
        return int(self.indices.size)

    @abstractmethod
    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        """Draw an ``(s, m)`` matrix of scores, one column per member."""

    @abstractmethod
    def batch_cdf(self, x: np.ndarray) -> np.ndarray:
        """``(s, m)`` matrix ``F_j(x_i)`` for thresholds ``x`` of shape ``(s,)``."""

    @abstractmethod
    def batch_ppf(self, u: np.ndarray) -> np.ndarray:
        """Map ``(s, m)`` uniforms through each member's quantile function."""


class PointBatch(FamilyBatch):
    """Deterministic scores: samples are constants, CDFs are steps.

    ``sample_values`` may differ from ``cdf_values`` — the Monte-Carlo
    evaluator substitutes tie-perturbed values on the sampling side while
    the CDF side keeps the true step location (matching the per-record
    reference semantics).
    """

    family = "point"

    def __init__(
        self,
        indices: Sequence[int],
        sample_values: Sequence[float],
        cdf_values: Sequence[float],
    ) -> None:
        super().__init__(indices)
        self.sample_values = np.asarray(sample_values, dtype=float)
        self.cdf_values = np.asarray(cdf_values, dtype=float)

    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        return np.broadcast_to(self.sample_values, (s, len(self))).copy()

    def batch_cdf(self, x: np.ndarray) -> np.ndarray:
        return (x[:, None] >= self.cdf_values[None, :]).astype(float)

    def batch_ppf(self, u: np.ndarray) -> np.ndarray:
        return np.broadcast_to(self.sample_values, u.shape).copy()


class UniformBatch(FamilyBatch):
    """Stacked :class:`UniformScore` records."""

    family = "uniform"

    def __init__(
        self, indices: Sequence[int], members: Sequence[UniformScore]
    ) -> None:
        super().__init__(indices)
        self.lowers = np.array([d.lower for d in members])
        self.uppers = np.array([d.upper for d in members])
        self._spans = self.uppers - self.lowers
        self._densities = 1.0 / self._spans

    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        # rng.random + in-place affine: ~3x faster than rng.uniform
        # with broadcast array bounds, and allocates no temporaries.
        out = rng.random((s, len(self)))
        out *= self._spans
        out += self.lowers
        return out

    def batch_cdf(self, x: np.ndarray) -> np.ndarray:
        return np.clip(
            (x[:, None] - self.lowers[None, :]) * self._densities[None, :],
            0.0,
            1.0,
        )

    def batch_ppf(self, u: np.ndarray) -> np.ndarray:
        return self.lowers[None, :] + u * self._spans[None, :]


class TriangularBatch(FamilyBatch):
    """Stacked :class:`TriangularScore` records."""

    family = "triangular"

    def __init__(
        self, indices: Sequence[int], members: Sequence[TriangularScore]
    ) -> None:
        super().__init__(indices)
        self.lowers = np.array([d.lower for d in members])
        self.modes = np.array([d.mode for d in members])
        self.uppers = np.array([d.upper for d in members])
        spans = self.uppers - self.lowers
        rise = self.modes - self.lowers
        fall = self.uppers - self.modes
        self._rise_area = np.where(rise > 0, spans * rise, 1.0)
        self._fall_area = np.where(fall > 0, spans * fall, 1.0)
        self._split = rise / spans

    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        return self.batch_ppf(rng.random((s, len(self))))

    def batch_cdf(self, x: np.ndarray) -> np.ndarray:
        xc = x[:, None]
        lo, mo, up = self.lowers, self.modes, self.uppers
        rising = (xc - lo) ** 2 / self._rise_area
        falling = 1.0 - (up - xc) ** 2 / self._fall_area
        mid = np.where((xc <= mo) & (mo > lo), rising, falling)
        return np.where(xc < lo, 0.0, np.where(xc > up, 1.0, mid))

    def batch_ppf(self, u: np.ndarray) -> np.ndarray:
        rising = self.lowers + np.sqrt(
            np.maximum(u, 0.0) * self._rise_area
        )
        falling = self.uppers - np.sqrt(
            np.maximum(1.0 - u, 0.0) * self._fall_area
        )
        out = np.where(u <= self._split[None, :], rising, falling)
        return np.clip(out, self.lowers, self.uppers)


class TruncatedGaussianBatch(FamilyBatch):
    """Stacked :class:`TruncatedGaussianScore` records."""

    family = "gaussian"

    def __init__(
        self,
        indices: Sequence[int],
        members: Sequence[TruncatedGaussianScore],
    ) -> None:
        super().__init__(indices)
        self.mus = np.array([d.mu for d in members])
        self.sigmas = np.array([d.sigma for d in members])
        self.lowers = np.array([d.lower for d in members])
        self.uppers = np.array([d.upper for d in members])
        self._alpha_cdf = _norm_cdf((self.lowers - self.mus) / self.sigmas)
        self._z = np.array([d._z for d in members])

    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        return self.batch_ppf(rng.random((s, len(self))))

    def batch_cdf(self, x: np.ndarray) -> np.ndarray:
        xc = x[:, None]
        z = (xc - self.mus) / self.sigmas
        raw = (_norm_cdf(z) - self._alpha_cdf) / self._z
        out = np.clip(raw, 0.0, 1.0)
        return np.where(xc < self.lowers, 0.0, np.where(xc > self.uppers, 1.0, out))

    def batch_ppf(self, u: np.ndarray) -> np.ndarray:
        base = self._alpha_cdf[None, :] + u * self._z[None, :]
        out = self.mus[None, :] + self.sigmas[None, :] * _norm_ppf(base)
        return np.clip(out, self.lowers, self.uppers)


class TruncatedExponentialBatch(FamilyBatch):
    """Stacked :class:`TruncatedExponentialScore` records."""

    family = "exponential"

    def __init__(
        self,
        indices: Sequence[int],
        members: Sequence[TruncatedExponentialScore],
    ) -> None:
        super().__init__(indices)
        self.rates = np.array([d.rate for d in members])
        self.lowers = np.array([d.lower for d in members])
        self.uppers = np.array([d.upper for d in members])
        self._z = np.array([d._z for d in members])

    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        return self.batch_ppf(rng.random((s, len(self))))

    def batch_cdf(self, x: np.ndarray) -> np.ndarray:
        xc = x[:, None]
        raw = (1.0 - np.exp(-self.rates * (xc - self.lowers))) / self._z
        out = np.clip(raw, 0.0, 1.0)
        return np.where(xc < self.lowers, 0.0, np.where(xc > self.uppers, 1.0, out))

    def batch_ppf(self, u: np.ndarray) -> np.ndarray:
        out = self.lowers - np.log1p(-u * self._z[None, :]) / self.rates
        return np.clip(out, self.lowers, self.uppers)


class _ColumnwiseBatch(FamilyBatch):
    """Shared machinery for families evaluated column by column.

    One uniform block is drawn with a single RNG call and pushed through
    each member's (internally vectorized) quantile function; the Python
    loop is over group members only, never over samples.
    """

    def __init__(
        self, indices: Sequence[int], members: Sequence[ScoreDistribution]
    ) -> None:
        super().__init__(indices)
        self.members = list(members)

    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        return self.batch_ppf(rng.random((s, len(self))))

    def batch_cdf(self, x: np.ndarray) -> np.ndarray:
        out = np.empty((x.size, len(self)))
        for j, member in enumerate(self.members):
            out[:, j] = np.asarray(member.cdf(x))
        return out

    def batch_ppf(self, u: np.ndarray) -> np.ndarray:
        out = np.empty_like(u)
        for j, member in enumerate(self.members):
            out[:, j] = np.asarray(member.ppf(u[:, j]))
        return out


class HistogramBatch(_ColumnwiseBatch):
    """Stacked :class:`HistogramScore` records (per-record bin layouts)."""

    family = "histogram"


class DiscreteBatch(_ColumnwiseBatch):
    """Stacked multi-atom :class:`DiscreteScore` records."""

    family = "discrete"


class GenericBatch(_ColumnwiseBatch):
    """Fallback for families without a closed-form columnar kernel.

    Mixtures and convolutions sample far faster through their native
    ``sample`` (component selection / sum of draws) than through their
    numeric quantile functions, so ``batch_sample`` delegates per record.
    """

    family = "generic"

    def batch_sample(self, rng: np.random.Generator, s: int) -> np.ndarray:
        out = np.empty((s, len(self)))
        for j, member in enumerate(self.members):
            out[:, j] = np.asarray(member.sample(rng, s))
        return out


class SamplingPlan:
    """A compiled columnar view of a database's score distributions.

    Groups the ``n`` distributions by family (see
    :func:`build_sampling_plan`) and evaluates each group with one
    vectorized kernel call. For a fixed database order the grouping —
    and therefore the RNG consumption pattern of :meth:`sample` — is
    deterministic, so a seeded generator reproduces draws exactly.
    """

    def __init__(self, groups: Sequence[FamilyBatch], n: int) -> None:
        self.groups = list(groups)
        self.n = int(n)
        # Single-family databases (the common benchmark/oracle case)
        # need no scatter: the lone group already covers every column
        # in database order, so kernels can write straight through.
        self._identity = (
            len(self.groups) == 1
            and np.array_equal(
                self.groups[0].indices, np.arange(self.n, dtype=np.intp)
            )
        )

    @property
    def family_counts(self) -> Dict[str, int]:
        """Number of records per family group (introspection/tests)."""
        counts: Dict[str, int] = {}
        for group in self.groups:
            counts[group.family] = counts.get(group.family, 0) + len(group)
        return counts

    def sample(self, rng: np.random.Generator, samples: int) -> np.ndarray:
        """Draw an ``(samples, n)`` score matrix in database column order."""
        if self._identity:
            return self.groups[0].batch_sample(rng, samples)
        out = np.empty((samples, self.n))
        for group in self.groups:
            out[:, group.indices] = group.batch_sample(rng, samples)
        return out

    def ppf(self, uniforms: np.ndarray) -> np.ndarray:
        """Push an ``(s, n)`` uniform matrix through all quantile kernels."""
        if self._identity:
            return self.groups[0].batch_ppf(uniforms)
        out = np.empty_like(uniforms)
        for group in self.groups:
            out[:, group.indices] = group.batch_ppf(
                uniforms[:, group.indices]
            )
        return out

    def cdf(self, x: ArrayLike) -> np.ndarray:
        """``(s, n)`` matrix ``F_j(x_i)`` for thresholds ``x`` of shape ``(s,)``."""
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        if self._identity:
            return self.groups[0].batch_cdf(x_arr)
        out = np.empty((x_arr.size, self.n))
        for group in self.groups:
            out[:, group.indices] = group.batch_cdf(x_arr)
        return out

    def cdf_product(
        self, x: ArrayLike, exclude: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """``prod_j F_j(x_i)`` over all columns not listed in ``exclude``.

        The workhorse of the CDF-product estimators (paper §VI-D): one
        call evaluates every remaining record's CDF at each sampled
        threshold and reduces along records.
        """
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        excluded = (
            np.zeros(self.n, dtype=bool)
            if exclude is None
            else np.isin(np.arange(self.n), np.asarray(exclude, dtype=np.intp))
        )
        out = np.ones(x_arr.size)
        for group in self.groups:
            keep = ~excluded[group.indices]
            if not np.any(keep):
                continue
            values = group.batch_cdf(x_arr)
            out *= np.prod(values[:, keep], axis=1)
        return out

    def export_shared(
        self, extra: Optional[Dict[str, Any]] = None
    ) -> "SharedPlanHandle":
        """Export this plan into a shared-memory segment.

        The segment holds the plan's numeric parameter arrays verbatim
        plus a pickled skeleton (group objects with those arrays
        stripped, segment layout, and the caller-supplied ``extra``
        payload). Workers rebuild the plan with
        :meth:`attach_shared`, mapping the arrays zero-copy instead of
        unpickling them per task. Object-holding groups (histogram,
        discrete, generic members) travel inside the pickle — they hold
        per-record Python objects, not stackable columns.

        The caller owns the returned handle and must eventually call
        :meth:`SharedPlanHandle.unlink`; :func:`repro.core.shm.live_segments`
        tracks outstanding names.
        """
        layout: List[Tuple[int, str, int, str, Tuple[int, ...]]] = []
        arrays: List[Tuple[int, np.ndarray]] = []
        cursor = _SHM_HEADER.size
        for gi, group in enumerate(self.groups):
            for attr in sorted(vars(group)):
                value = vars(group)[attr]
                if isinstance(value, np.ndarray) and value.dtype != object:
                    arr = np.ascontiguousarray(value)
                    cursor = -(-cursor // 16) * 16
                    layout.append(
                        (gi, attr, cursor, arr.dtype.str, arr.shape)
                    )
                    arrays.append((cursor, arr))
                    cursor += arr.nbytes
        skeletons: List[FamilyBatch] = []
        for gi, group in enumerate(self.groups):
            clone = copy.copy(group)
            for entry in layout:
                if entry[0] == gi:
                    setattr(clone, entry[1], None)
            skeletons.append(clone)
        meta = {
            "groups": skeletons,
            "n": self.n,
            "layout": layout,
            "extra": extra,
        }
        blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        segment = shm.create_segment(cursor + len(blob))
        _SHM_HEADER.pack_into(segment.buf, 0, cursor, len(blob))
        for offset, arr in arrays:
            segment.buf[offset : offset + arr.nbytes] = arr.tobytes()
        segment.buf[cursor : cursor + len(blob)] = blob
        return SharedPlanHandle(segment.name, segment)

    @classmethod
    def attach_shared(cls, handle: "SharedPlanHandle") -> "SamplingPlan":
        """Rebuild a plan from a segment produced by :meth:`export_shared`.

        Numeric arrays are read-only views into the mapped segment
        (zero-copy); the attached plan keeps the mapping alive for its
        own lifetime and exposes the exporter's payload as
        ``shared_extra``. Attaching never adopts ownership — only the
        exporting process unlinks.
        """
        segment = shm.attach_segment(handle.name)
        pickle_off, pickle_len = _SHM_HEADER.unpack_from(segment.buf, 0)
        meta = pickle.loads(
            bytes(segment.buf[pickle_off : pickle_off + pickle_len])
        )
        groups: List[FamilyBatch] = meta["groups"]
        for gi, attr, offset, dtype, shape in meta["layout"]:
            view: np.ndarray = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset
            )
            view.flags.writeable = False
            setattr(groups[gi], attr, view)
        plan = cls(groups, meta["n"])
        plan._segment = segment  # keep the mapping alive with the plan
        plan.shared_extra = meta["extra"]
        return plan


#: Segment header: byte offset and length of the pickled skeleton that
#: follows the raw parameter arrays.
_SHM_HEADER = struct.Struct("<QQ")


class SharedPlanHandle:
    """Picklable reference to an exported :class:`SamplingPlan` segment.

    Only the segment name crosses process boundaries; the creating
    process additionally holds the :class:`SharedMemory` object so
    :meth:`unlink` can release the kernel object. ``unlink`` is
    idempotent and safe to call after a worker crash — the parent's
    mapping survives dead children.
    """

    __slots__ = ("name", "_segment")

    def __init__(self, name: str, segment: Any = None) -> None:
        self.name = name
        self._segment = segment

    def __getstate__(self) -> str:
        return self.name

    def __setstate__(self, state: str) -> None:
        self.name = state
        self._segment = None

    def unlink(self) -> None:
        """Release the segment (parent side). Idempotent."""
        shm.unlink_segment(self._segment if self._segment is not None else self.name)
        self._segment = None


def build_sampling_plan(
    distributions: Sequence[ScoreDistribution],
    sample_overrides: Optional[Mapping[int, float]] = None,
) -> SamplingPlan:
    """Compile distributions into a columnar :class:`SamplingPlan`.

    Parameters
    ----------
    distributions:
        The database's score densities in column order.
    sample_overrides:
        Optional ``{column: value}`` replacements applied on the
        *sampling* side of deterministic records (the Monte-Carlo
        evaluator's tie perturbations); CDF evaluation keeps the true
        step location.

    Grouping: deterministic scores (of any family) form the point
    group; uniform, triangular, truncated-Gaussian, and truncated-
    exponential records get closed-form stacked kernels; histograms and
    multi-atom discrete scores share one RNG block with column-wise
    transforms; every other family (mixtures, convolutions, custom
    subclasses) falls back to the generic per-record kernel. Groups are
    ordered by first appearance, so the plan is deterministic for a
    given database order.
    """
    overrides = dict(sample_overrides or {})
    buckets: Dict[str, Tuple[List[int], List[ScoreDistribution]]] = {}
    for col, dist in enumerate(distributions):
        if dist.is_deterministic:
            key = "point"
        elif isinstance(dist, UniformScore):
            key = "uniform"
        elif isinstance(dist, TriangularScore):
            key = "triangular"
        elif isinstance(dist, TruncatedGaussianScore):
            key = "gaussian"
        elif isinstance(dist, TruncatedExponentialScore):
            key = "exponential"
        elif isinstance(dist, HistogramScore):
            key = "histogram"
        elif isinstance(dist, DiscreteScore):
            key = "discrete"
        else:
            key = "generic"
        indices, members = buckets.setdefault(key, ([], []))
        indices.append(col)
        members.append(dist)

    builders = {
        "uniform": UniformBatch,
        "triangular": TriangularBatch,
        "gaussian": TruncatedGaussianBatch,
        "exponential": TruncatedExponentialBatch,
        "histogram": HistogramBatch,
        "discrete": DiscreteBatch,
        "generic": GenericBatch,
    }
    groups: List[FamilyBatch] = []
    for key, (indices, members) in buckets.items():
        if key == "point":
            cdf_values = [d.lower for d in members]
            sample_values = [
                overrides.get(col, d.lower)
                for col, d in zip(indices, members)
            ]
            groups.append(PointBatch(indices, sample_values, cdf_values))
        else:
            groups.append(builders[key](indices, members))
    return SamplingPlan(groups, len(distributions))
