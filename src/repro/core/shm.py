"""Shared-memory segment lifecycle and bookkeeping.

The process-pool execution backend (:mod:`repro.core.parallel`) ships
compiled :class:`~repro.core.distributions.SamplingPlan` arrays and
cross-process budget state to workers through POSIX shared memory.
Segments are named kernel objects that outlive the process that forgot
to unlink them, so every segment created by this package goes through
this module: creation registers the name in a process-local registry,
unlinking removes it, and :func:`live_segments` exposes the registry so
tests can assert nothing leaked after an engine close or a worker crash.

Attaching from a worker uses :func:`attach_segment`, which immediately
unregisters the mapping from :mod:`multiprocessing.resource_tracker`.
On Python < 3.13 ``SharedMemory(name=...)`` re-registers the segment
with the attaching process's resource tracker, which would otherwise
unlink it when the *worker* exits even though the parent still owns it.
Ownership here is explicit: the creating process unlinks, everyone else
only closes.
"""

from __future__ import annotations

import logging
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import FrozenSet, Optional, Union

__all__ = [
    "attach_segment",
    "create_segment",
    "live_segments",
    "unlink_segment",
]

logger = logging.getLogger(__name__)

_LOCK = threading.Lock()
_LIVE: set = set()


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create a shared-memory segment and record its name as live."""
    segment = shared_memory.SharedMemory(create=True, size=max(1, int(nbytes)))
    with _LOCK:
        _LIVE.add(segment.name)
    return segment


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    On Python 3.11 ``SharedMemory(name=...)`` registers the segment
    with the attaching process's resource tracker unconditionally.
    Whether that registration must be dropped depends on whose tracker
    received it:

    - A *spawned* worker starts its own tracker; leaving the
      registration would unlink the segment when the worker exits even
      though the parent still owns it, so it is removed.
    - A *forked* worker inherits the parent's tracker; removing the
      registration there would delete the parent's own entry from the
      shared tracker. It is left alone (a duplicate register in the
      tracker's name set is a no-op).
    - The creating process keeps its entry; the eventual
      :func:`unlink_segment` balances it.

    The distinction is made once per process, before the first attach:
    a tracker connection already open at that point was started by this
    process's own creations or inherited across ``fork`` — both cases
    where entries must stay.
    """
    shared = _tracker_shared()
    segment = shared_memory.SharedMemory(name=name)
    with _LOCK:
        own = segment.name in _LIVE
    if not own and not shared:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception as exc:  # pragma: no cover - tracker internals vary
            logger.debug(
                "could not unregister %s from the resource tracker (%s); "
                "worst case the tracker unlinks it at worker exit",
                name,
                exc,
            )
    return segment


_TRACKER_SHARED: Optional[bool] = None


def _tracker_shared() -> bool:
    """Whether this process's resource tracker serves other processes.

    Evaluated lazily and cached; creations in this process force it to
    ``True`` (our own tracker holds entries we must keep balanced).
    """
    global _TRACKER_SHARED
    if _TRACKER_SHARED is None:
        with _LOCK:
            if _LIVE:
                _TRACKER_SHARED = True
        if _TRACKER_SHARED is None:
            tracker = getattr(resource_tracker, "_resource_tracker", None)
            _TRACKER_SHARED = getattr(tracker, "_fd", None) is not None  # reprolint: disable=CON001 -- idempotent memo: racing writers compute the same value, and the answer is fixed for the life of the process
    return _TRACKER_SHARED


def unlink_segment(
    segment: Union[shared_memory.SharedMemory, str, None],
) -> None:
    """Close and unlink a segment owned by this process. Idempotent."""
    if segment is None:
        return
    if isinstance(segment, str):
        name = segment
        try:
            segment = attach_segment(name)
        except FileNotFoundError:
            with _LOCK:
                _LIVE.discard(name)
            return
    name = segment.name
    try:
        segment.close()
    except Exception as exc:  # pragma: no cover - double close is harmless
        logger.debug("double close of segment %s ignored (%s)", name, exc)
    try:
        segment.unlink()
    except FileNotFoundError:
        # Already unlinked (idempotent call); only the registry entry
        # remains to clean up.
        logger.debug("segment %s was already unlinked", name)
    with _LOCK:
        _LIVE.discard(name)


def live_segments() -> FrozenSet[str]:
    """Names of segments created by this process and not yet unlinked."""
    with _LOCK:
        return frozenset(_LIVE)
