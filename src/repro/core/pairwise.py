"""Pairwise ranking probabilities ``Pr(t_i > t_j)`` (paper Eq. 1).

For records with independent score densities,

    Pr(t_i > t_j) = int f_i(x) * F_j(x) dx

where ``F_j`` is the CDF of ``t_j``. This module evaluates that integral:

- in closed form for uniform/uniform and point/any pairs,
- exactly through the piecewise-polynomial algebra when both densities are
  piecewise polynomials,
- by adaptive numeric quadrature otherwise,

and provides the memo cache the paper calls out in §VI-D ("Caching"): the
2-D integrals are shared among many MCMC states, so they are computed once
per unordered pair.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, List, Optional, Tuple

from scipy import integrate

from .distributions import PointScore, UniformScore
from .records import UncertainRecord, tie_break

__all__ = ["probability_greater", "PairwiseCache"]


def _uniform_uniform_probability(x: UniformScore, y: UniformScore) -> float:
    """Closed-form ``Pr(X > Y)`` for independent uniforms.

    Integrates ``F_Y`` against the constant density of ``X`` segment by
    segment; ``F_Y`` is 0 below ``y.lower``, linear on ``[y.lower,
    y.upper]``, and 1 above.
    """
    a, b = x.lower, x.upper
    c, d = y.lower, y.upper
    density = 1.0 / (b - a)
    total = 0.0
    # Segment of [a, b] where F_Y is linear.
    lo = max(a, c)
    hi = min(b, d)
    if hi > lo:
        # integral of (t - c) / (d - c) dt over [lo, hi], with the
        # difference of squares kept factored: the expanded form
        # (hi-c)^2 - (lo-c)^2 cancels catastrophically when [c, d] is
        # much narrower than its magnitude, breaking the complement
        # identity Pr(X>Y) + Pr(Y>X) = 1 by ~1e-8.
        total += (
            (hi - lo) * ((hi - c) + (lo - c)) / (2.0 * (d - c)) * density
        )
    # Segment of [a, b] above d, where F_Y == 1.
    if b > d:
        total += (b - max(a, d)) * density
    return min(max(total, 0.0), 1.0)


def _generic_probability(a: UncertainRecord, b: UncertainRecord) -> float:
    """Numeric quadrature fallback for arbitrary continuous densities."""
    lo = max(a.lower, b.lower)
    up = a.upper
    if up <= lo:
        # a's entire support lies below b's: only the region above b.lower
        # could contribute, and there is none.
        return 0.0
    # full_output suppresses convergence warnings for integrands with
    # kinks (e.g. grid-interpolated convolution CDFs); the achieved
    # accuracy is far below the tolerances used downstream either way.
    result = integrate.quad(
        lambda t: a.score.pdf(t) * b.score.cdf(t),
        lo,
        up,
        limit=200,
        full_output=1,
    )
    value = result[0]
    # Mass of a below b's support wins nothing; mass above b's support wins
    # with probability 1 and is already included because F_b == 1 there.
    # Add the part of a's support in [a.lower, lo) only if F_b > 0 there,
    # which cannot happen since lo >= b.lower.
    return min(max(value, 0.0), 1.0)


def probability_greater(a: UncertainRecord, b: UncertainRecord) -> float:
    """``Pr(a > b)`` under independent scores (paper Eq. 1).

    Dominance yields 0 or 1; identical deterministic scores are resolved
    by the deterministic tie-breaker ``tau``.
    """
    if a.is_deterministic and b.is_deterministic:
        if a.lower > b.lower:
            return 1.0
        if a.lower < b.lower:
            return 0.0
        return 1.0 if tie_break(a, b) else 0.0
    if a.lower >= b.upper:
        return 1.0
    if b.lower >= a.upper:
        return 0.0

    sa, sb = a.score, b.score
    if isinstance(sa, PointScore):
        return float(min(max(sb.cdf(sa.value), 0.0), 1.0))
    if isinstance(sb, PointScore):
        return float(min(max(1.0 - sa.cdf(sb.value), 0.0), 1.0))
    if isinstance(sa, UniformScore) and isinstance(sb, UniformScore):
        return _uniform_uniform_probability(sa, sb)
    if sa.supports_exact and sb.supports_exact:
        product = sa.pdf_piecewise() * sb.cdf_piecewise()
        return min(max(product.integral(), 0.0), 1.0)
    return _generic_probability(a, b)


class PairwiseCache:
    """Memo cache for pairwise probabilities (paper §VI-D, "Caching").

    Stores one probability per unordered record pair and serves the
    complement for the reversed order. Hit/miss counters support the
    caching ablation benchmark.
    """

    def __init__(self) -> None:
        self._store: Dict[Tuple[str, str], float] = {}
        self.hits = 0
        self.misses = 0

    def probability(self, a: UncertainRecord, b: UncertainRecord) -> float:
        """``Pr(a > b)``, computed once per unordered pair."""
        key = (a.record_id, b.record_id)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            # The store only ever holds already-clamped probabilities;
            # re-clamping on the cache-hit hot path is wasted work.
            return cached  # reprolint: disable=PRB001
        value = probability_greater(a, b)
        self.misses += 1
        self._store[key] = value
        self._store[(b.record_id, a.record_id)] = 1.0 - value
        return value

    def __len__(self) -> int:
        return len(self._store)

    def snapshot(
        self, start: int = 0
    ) -> List[Tuple[Tuple[str, str], float]]:
        """Entries in insertion order, skipping the first ``start``.

        Dicts preserve insertion order and this store is append-only
        between :meth:`clear` calls, so ``snapshot(n)`` returns exactly
        the entries added after an earlier ``len(cache) == n``
        observation. The process-backend MCMC workers use this to ship
        only the integrals computed since their last report.
        """
        items = list(self._store.items())
        return items if start <= 0 else items[start:]

    def merge(
        self, items: Iterable[Tuple[Tuple[str, str], float]]
    ) -> None:
        """Adopt entries computed elsewhere (existing entries win).

        The integrals are pure functions of the record pair, so a
        duplicate arriving from another process carries the same value
        and keeping the incumbent is exact, not a policy choice.
        """
        for key, value in items:
            self._store.setdefault(tuple(key), value)  # reprolint: disable=CON001 -- merge() runs on the query thread between MCMC epochs, after the process pool has returned; no worker touches this store

    def carry_forward(
        self, dirty: AbstractSet[str]
    ) -> Tuple["PairwiseCache", int, int]:
        """A new memo holding every entry untouched by ``dirty`` ids.

        The Eq. 1 integrals are pure functions of the two records, so
        after a mutation batch every cached entry whose *both* endpoint
        records are outside the delta's touched-key set is still exact
        for the new database state. Returns ``(fresh_cache, carried,
        dropped)`` counting *ordered* entries; the delta-aware cache
        migration (:meth:`repro.core.cache.ComputationCache.migrate`)
        registers the fresh memo under the post-mutation fingerprint.
        """
        fresh = PairwiseCache()
        dropped = 0
        for key, value in self._store.items():
            if key[0] in dirty or key[1] in dirty:
                dropped += 1
            else:
                fresh._store[key] = value
        return fresh, len(fresh._store), dropped

    @property
    def nbytes(self) -> int:
        """Rough retained size: two keyed floats per unordered pair."""
        return 120 * len(self._store)

    def clear(self) -> None:
        """Drop all cached entries and reset counters."""
        self._store.clear()  # reprolint: disable=CON001 -- invalidation API: clear() is called by the owning engine between queries, never while worker threads are live
        self.hits = 0
        self.misses = 0


def maybe_cached(
    a: UncertainRecord,
    b: UncertainRecord,
    cache: Optional[PairwiseCache] = None,
) -> float:
    """``Pr(a > b)`` through ``cache`` when one is supplied."""
    if cache is None:
        return probability_greater(a, b)
    return cache.probability(a, b)
