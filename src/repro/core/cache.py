"""Session-scoped shared computation cache (paper §VI-D, generalized).

The paper's own evaluation leans on caching: §VI-D computes the Eq. 1
pairwise integrals "once per unordered pair" and shares them across all
MCMC states. This module generalizes that observation to every compiled
or sampled artifact the query engine produces, so repeated query traffic
over the same database is served from memoized work instead of cold
starts:

- **Content-addressed fingerprints** (:func:`fingerprint_records`):
  a blake2b digest over record ids, interval bounds, and distribution
  family + canonical parameters (the tie-breaker is the record id, which
  is part of the digest). Two separately constructed but identical
  databases share one fingerprint; any mutation changes it, so a stale
  entry can never be addressed again.
- **Compiled artifacts by fingerprint**: sampling plans, evaluators,
  partial orders, pruning results, and one :class:`~repro.core.pairwise.
  PairwiseCache` per database shared by the exact, MCMC, and rank-
  aggregation paths (:meth:`ComputationCache.pairwise`).
- **Cross-query rank-count reuse with deterministic top-up**
  (:class:`RankCountStore`): Monte-Carlo rank counts are stored in
  fixed-size sample blocks, each drawn under a per-block call seed
  through the samplers' spawn-key determinism contract. Any requested
  sample count decomposes into blocks, so a later query needing more
  samples reuses every cached block and only draws the missing suffix —
  and the merged counts are bit-identical to a cold run at the larger
  budget, because each block is a pure function of ``(sampler seed,
  block index, block size)`` and block counts are exact integers in
  float64 (addition order cannot change the bits).
- **LRU eviction with byte accounting** plus :class:`CacheStats`
  (hits, misses, evictions, bytes, top-up extensions) so cache behavior
  is observable (``RankingEngine.cache_stats()``) rather than inferred.

Depth is handled the same way: blocks are stored at the deepest
``max_rank`` ever requested and shallower queries are served by column
slicing, which is exact because rankings do not depend on the reported
rank window and the per-cell counts are integral.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from . import metrics
from .budget import Budget, SampleCounts
from .costmodel import CostModel
from .errors import QueryError
from .montecarlo import MonteCarloEvaluator
from .pairwise import PairwiseCache
from .parallel import ParallelSampler
from .records import UncertainRecord
from .trace import accumulate

__all__ = [
    "SAMPLE_BLOCK",
    "CacheStats",
    "ComputationCache",
    "MigrationReport",
    "RankCountStore",
    "fingerprint_records",
    "shared_cache",
]

#: Canonical sample-block size for the rank-count store. Every request
#: is decomposed into full blocks of this size plus one remainder piece;
#: block ``i`` is always drawn under call seed ``i``, which is what makes
#: warm results bit-identical to cold runs at any budget.
SAMPLE_BLOCK = 4096

#: A sampler front-end usable by the rank-count store: both
#: :class:`~repro.core.montecarlo.MonteCarloEvaluator` and
#: :class:`~repro.core.parallel.ParallelSampler` satisfy it.
RankCountSampler = Union[MonteCarloEvaluator, ParallelSampler]


def fingerprint_records(records: Sequence[UncertainRecord]) -> str:
    """Content digest of a record list (order-sensitive, blake2b).

    Covers, per record: the record id (also the paper's tie-breaker
    ``tau``), the interval bounds, and the distribution's canonical
    parameter token (:meth:`~repro.core.distributions.ScoreDistribution.
    fingerprint`). Unknown distribution families fall back to an
    identity-based token, which keeps the digest conservative: such
    databases never alias a cache entry they did not themselves create.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(b"records-v1")
    for rec in records:
        h.update(rec.record_id.encode("utf-8"))
        h.update(b"\x00")
        h.update(struct.pack("<dd", rec.lower, rec.upper))
        h.update(rec.score.fingerprint().encode("utf-8"))
        h.update(b"\x01")
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`ComputationCache`.

    ``topups`` counts rank-count requests that were *partially* covered
    by cached sample blocks and extended deterministically, as opposed
    to full ``hits`` and cold ``misses``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes: int = 0
    topups: int = 0
    entries: int = 0
    migrations: int = 0
    carried: int = 0

    def to_dict(self) -> dict:
        """JSON-friendly rendition (used by ``explain()`` and results)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes": self.bytes,
            "topups": self.topups,
            "entries": self.entries,
            "migrations": self.migrations,
            "carried": self.carried,
        }

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counter increments between ``since`` and this snapshot."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            evictions=self.evictions - since.evictions,
            bytes=self.bytes,
            topups=self.topups - since.topups,
            entries=self.entries,
            migrations=self.migrations - since.migrations,
            carried=self.carried - since.carried,
        )


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one :meth:`ComputationCache.migrate` call.

    ``pairwise_carried``/``pairwise_dropped`` count ordered Eq. 1 memo
    entries moved to (resp. excluded from) the post-mutation
    fingerprint; ``cost_model_carried`` says whether the fitted planner
    cost model was re-keyed. ``noop`` marks a migration where the
    fingerprints were already equal (a byte-identical mutation batch).
    """

    pairwise_carried: int = 0
    pairwise_dropped: int = 0
    cost_model_carried: bool = False
    noop: bool = False

    @property
    def reuse_fraction(self) -> float:
        """Fraction of pairwise entries that survived the delta."""
        total = self.pairwise_carried + self.pairwise_dropped
        if total == 0:
            return 1.0 if self.noop else 0.0
        return self.pairwise_carried / total

    def to_dict(self) -> dict:
        """JSON-friendly rendition (used by the ``/mutate`` endpoint)."""
        return {
            "pairwise_carried": self.pairwise_carried,
            "pairwise_dropped": self.pairwise_dropped,
            "cost_model_carried": self.cost_model_carried,
            "reuse_fraction": self.reuse_fraction,
            "noop": self.noop,
        }


class RankCountStore:
    """Block-structured Monte-Carlo rank counts for one sampler stream.

    One store exists per ``(database fingerprint, sampling backend)``
    pair. Counts are kept in pieces keyed ``(block index, piece size)``;
    piece ``(i, s)`` always holds the counts of
    ``sampler.rank_counts(s, seed=i)``, so its content is a pure
    function of the key and the backend — never of request history.
    Requests for ``N`` samples decompose into full :data:`SAMPLE_BLOCK`
    pieces plus one remainder piece, which is exactly how a cold run at
    ``N`` would be drawn; serving cached pieces therefore reproduces the
    cold result bit for bit.

    Pieces are stored at the deepest ``max_rank`` seen so far and served
    by column slicing (counts are exact integers, so a slice of a deep
    count matrix equals a directly computed shallow one).
    """

    def __init__(self, block: int = SAMPLE_BLOCK) -> None:
        if block < 1:
            raise QueryError("block size must be positive")
        self.block = int(block)
        self._pieces: Dict[Tuple[int, int], Tuple[int, np.ndarray]] = {}

    @property
    def nbytes(self) -> int:
        """Approximate retained bytes across all cached pieces."""
        return sum(
            counts.nbytes + 64 for _, counts in self._pieces.values()
        )

    def pieces(self, samples: int) -> List[Tuple[int, int]]:
        """The canonical ``(block index, size)`` decomposition of a request."""
        if samples < 1:
            raise QueryError("need at least one sample")
        full, rest = divmod(samples, self.block)
        out = [(idx, self.block) for idx in range(full)]
        if rest:
            out.append((full, rest))
        return out

    def coverage(self, samples: int, limit: int) -> int:
        """How many of ``samples`` are already served by cached pieces."""
        covered = 0
        for idx, size in self.pieces(samples):
            cached = self._pieces.get((idx, size))
            if cached is not None and cached[0] >= limit:
                covered += size
        return covered

    def counts_for(
        self,
        sampler: RankCountSampler,
        samples: int,
        limit: int,
        budget: Optional[Budget] = None,
    ) -> Tuple[SampleCounts, int]:
        """Merged counts for ``samples`` draws at rank depth ``limit``.

        Returns ``(counts, covered)`` where ``covered`` is the number of
        samples served from cache. Missing pieces are drawn through
        ``sampler.rank_counts(size, seed=block_index)`` — the spawn-key
        contract makes each piece independent of call order — and cached
        when they complete cleanly. Under a ``budget``, only the *new*
        samples are charged via :meth:`Budget.take_samples`; cached
        coverage is free. A clipped draw is returned (and the clipped
        piece cached under its actual size) but the requested piece is
        left uncached, so a later request re-extends deterministically.
        """
        n = len(sampler.records)
        merged = np.zeros((n, limit))
        covered = 0
        done = 0
        missing: List[Tuple[int, int]] = []
        for idx, size in self.pieces(samples):
            cached = self._pieces.get((idx, size))
            if cached is not None and cached[0] >= limit:
                merged += cached[1][:, :limit]
                covered += size
                done += size
            else:
                missing.append((idx, size))
        reason: Optional[str] = None
        to_draw = sum(size for _, size in missing)
        grant = to_draw
        if budget is not None and to_draw:
            grant = budget.take_samples(to_draw)
            if grant < to_draw:
                reason = budget.exhausted_reason() or "samples"
        for idx, size in missing:
            if grant <= 0:
                break
            take = min(size, grant)
            grant -= take
            sc = sampler.rank_counts(
                take, max_rank=limit, seed=idx, budget=budget
            )
            merged += sc.counts
            done += sc.done
            if sc.done == take:
                # A clean piece — full or budget-clipped to ``take`` —
                # is a pure function of (backend, idx, take): cache it.
                self._pieces[(idx, take)] = (limit, sc.counts)  # reprolint: disable=CON001 -- externally synchronized: every caller reaches counts_for through ComputationCache.rank_counts, which holds self._lock (RLock)
            else:
                # The draw itself was interrupted mid-chunk (deadline);
                # the counts are a usable prefix but not addressable.
                reason = sc.reason or reason
                break
            if sc.reason is not None:
                reason = sc.reason
                break
        return (
            SampleCounts(
                counts=merged, done=done, requested=samples, reason=reason
            ),
            covered,
        )


@dataclass
class _Entry:
    value: Any
    size_fn: Callable[[], int]
    nbytes: int = 0


def _default_size(value: Any) -> int:
    """Rough byte estimate for values without an explicit size hook."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return 256


class ComputationCache:
    """LRU, byte-accounted store of fingerprint-keyed computations.

    Each :class:`~repro.core.engine.RankingEngine` gets a private
    instance by default; pass ``cache="shared"`` (the process-wide
    :func:`shared_cache`) or one explicit instance to several engines to
    serve repeated query traffic across engines. All methods are thread-safe behind one reentrant lock;
    cached values themselves are treated as immutable once stored
    (rank-count stores mutate only under the lock via :meth:`rank_counts`).

    Parameters
    ----------
    max_bytes:
        Eviction threshold for the summed byte estimates of all
        entries. Least-recently-used entries are dropped first; the
        most recent entry always survives even when it alone exceeds
        the limit (evicting it would make the cache useless).
    max_entries:
        Hard cap on the entry count, independent of size.
    block:
        Sample-block size handed to new :class:`RankCountStore` entries.
    """

    def __init__(
        self,
        max_bytes: int = 256 * 1024 * 1024,
        max_entries: int = 4096,
        block: int = SAMPLE_BLOCK,
    ) -> None:
        if max_bytes < 1:
            raise QueryError("max_bytes must be positive")
        if max_entries < 1:
            raise QueryError("max_entries must be positive")
        self.max_bytes = int(max_bytes)
        self.max_entries = int(max_entries)
        self.block = int(block)
        self._entries: "OrderedDict[Tuple[str, Hashable], _Entry]" = (
            OrderedDict()
        )
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._topups = 0
        self._migrations = 0
        self._carried = 0

    # ------------------------------------------------------------------
    # generic artifacts
    # ------------------------------------------------------------------

    def artifact(
        self,
        kind: str,
        key: Hashable,
        builder: Callable[[], Any],
        size_fn: Optional[Callable[[], int]] = None,
        count: bool = True,
    ) -> Any:
        """The cached value for ``(kind, key)``, building it on a miss.

        ``size_fn`` supplies the byte estimate (re-evaluated on every
        eviction pass, so growing values stay honestly accounted);
        ``count=False`` suppresses hit/miss accounting for internal
        lookups whose cost is accounted elsewhere.
        """
        full_key = (kind, key)
        with self._lock:
            entry = self._entries.get(full_key)
            if entry is not None:
                self._entries.move_to_end(full_key)
                if count:
                    self._hits += 1
                    metrics.inc("cache_hits_total", 1.0, kind=kind)
                    accumulate("cache_hits")
                return entry.value
            value = builder()
            if count:
                self._misses += 1
                metrics.inc("cache_misses_total", 1.0, kind=kind)
                accumulate("cache_misses")
            fn = size_fn if size_fn is not None else (
                lambda: _default_size(value)
            )
            self._entries[full_key] = _Entry(value=value, size_fn=fn)
            self._evict()
            return value

    def contains(self, kind: str, key: Hashable) -> bool:
        """Whether ``(kind, key)`` is currently cached (no LRU touch)."""
        with self._lock:
            return (kind, key) in self._entries

    def invalidate(self, kind: str, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            return self._entries.pop((kind, key), None) is not None

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._topups = 0
            self._migrations = 0
            self._carried = 0

    # ------------------------------------------------------------------
    # pairwise integrals (paper §VI-D)
    # ------------------------------------------------------------------

    def pairwise(self, fingerprint: str) -> PairwiseCache:
        """The shared Eq. 1 memo for one database fingerprint.

        Keyed by fingerprint because :class:`PairwiseCache` stores by
        record-id pair: sharing across *different* databases could
        alias ids, while sharing across subsets of the same database is
        sound (``Pr(a > b)`` depends only on the two records). The
        exact, MCMC, and rank-aggregation paths all draw from this one
        memo.
        """
        return self.artifact("pairwise", fingerprint, PairwiseCache)

    # ------------------------------------------------------------------
    # delta-aware migration (incremental maintenance)
    # ------------------------------------------------------------------

    def migrate(
        self,
        old_fingerprint: str,
        new_fingerprint: str,
        dirty: AbstractSet[str],
    ) -> MigrationReport:
        """Carry delta-surviving artifacts across a fingerprint change.

        Called by the engine's ``from_table`` subscription when a
        mutation batch moves the database fingerprint and the
        :class:`~repro.db.table.TableDelta` names exactly which record
        keys changed (``dirty``). Only artifacts whose values are
        *provably* unchanged by the delta are re-keyed:

        - **Pairwise integrals** (and with them the PPO's edges, which
          are lazily rebuilt from this memo): ``Pr(a > b)`` depends only
          on the two records, so every entry with both endpoints outside
          ``dirty`` is copied into a fresh memo under the new
          fingerprint (:meth:`~repro.core.pairwise.PairwiseCache.
          carry_forward`). A single-record edit at ``n`` records keeps
          ``(n-1)(n-2)`` of the ``n(n-1)`` ordered entries — the ≥90%
          reuse the streaming benchmark measures.
        - **The fitted cost model**: stage-cost coefficients are
          properties of the database's size and overlap structure, which
          one edit barely perturbs; the model is advisory (it shapes
          budgeted plans, never unbudgeted answers), so re-keying it is
          safe and keeps warm planning accuracy.

        **Rank-count blocks are deliberately not re-keyed.** A block is
        a pure function of ``(fingerprint, backend, block index)`` and
        the columnar :class:`~repro.core.distributions.SamplingPlan`
        couples the RNG consumption layout to the full record subset, so
        any content change redraws different variates for *every*
        record — a patched block could not be bit-identical to a cold
        recompute. Blocks over pruned subsets the delta did not touch
        stay addressable through their own (unchanged) pruned
        fingerprints, which is where warm rank-count reuse actually
        comes from; everything else falls back to recompute, never to a
        wrong answer.

        Idempotent and conservative: existing entries under the new
        fingerprint are never overwritten, and equal fingerprints (a
        byte-identical batch) are a no-op.
        """
        if old_fingerprint == new_fingerprint:
            return MigrationReport(noop=True)
        dirty = frozenset(dirty)
        with self._lock:
            carried = 0
            dropped = 0
            entry = self._entries.get(("pairwise", old_fingerprint))
            if entry is not None and not self.contains(
                "pairwise", new_fingerprint
            ):
                fresh, carried, dropped = entry.value.carry_forward(dirty)
                self._entries[("pairwise", new_fingerprint)] = _Entry(
                    value=fresh, size_fn=lambda v=fresh: v.nbytes
                )
            cost_carried = False
            cm_entry = self._entries.get(("cost-model", old_fingerprint))
            if cm_entry is not None and not self.contains(
                "cost-model", new_fingerprint
            ):
                # The same live model serves both keys; observations are
                # advisory, so sharing cannot change any answer.
                self._entries[("cost-model", new_fingerprint)] = _Entry(
                    value=cm_entry.value, size_fn=cm_entry.size_fn
                )
                cost_carried = True
            self._migrations += 1
            self._carried += carried
            metrics.inc("cache_migrations_total")
            metrics.inc("cache_carried_entries_total", float(carried))
            self._evict()
            return MigrationReport(
                pairwise_carried=carried,
                pairwise_dropped=dropped,
                cost_model_carried=cost_carried,
            )

    # ------------------------------------------------------------------
    # planner cost model
    # ------------------------------------------------------------------

    def cost_model(self, fingerprint: str) -> "CostModel":
        """The fitted planner cost model for one database fingerprint.

        Keyed by fingerprint because stage costs are properties of the
        database (size, overlap structure): engines sharing a cache
        also share fitted coefficients, so a warm engine plans with
        everything previously observed against the same table. Stored
        as an ordinary artifact, so a version-bumped fingerprint
        naturally starts from priors again.
        """
        return self.artifact("cost-model", fingerprint, CostModel)

    # ------------------------------------------------------------------
    # rank counts (Eq. 7) with deterministic top-up
    # ------------------------------------------------------------------

    def rank_counts(
        self,
        fingerprint: str,
        backend: Hashable,
        sampler: RankCountSampler,
        samples: int,
        max_rank: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> SampleCounts:
        """Memoized ``rank_counts`` with cross-query deterministic top-up.

        ``backend`` must identify everything besides the fingerprint
        that affects sampled values: the sampler kind and seed, shard
        count, and any correlation model. Under a ``budget``, cached
        coverage is free and only missing samples are charged. The
        returned counts are bit-identical to
        ``sampler.rank_counts`` run cold piece by piece at the same
        total, whatever mixture of cache and fresh drawing produced
        them.
        """
        if samples < 1:
            raise QueryError("need at least one sample")
        n = len(sampler.records)
        limit = n if max_rank is None else max(1, min(int(max_rank), n))
        with self._lock:
            store: RankCountStore = self.artifact(
                "rank-counts",
                (fingerprint, backend),
                lambda: RankCountStore(block=self.block),
                count=False,
            )
            covered = store.coverage(samples, limit)
            if covered >= samples:
                self._hits += 1
                metrics.inc("cache_hits_total", 1.0, kind="rank-counts")
                accumulate("cache_hits")
            elif covered > 0:
                self._topups += 1
                metrics.inc("cache_topups_total", 1.0, kind="rank-counts")
                accumulate("cache_topups")
            else:
                self._misses += 1
                metrics.inc("cache_misses_total", 1.0, kind="rank-counts")
                accumulate("cache_misses")
            result, _ = store.counts_for(
                sampler, samples, limit, budget=budget
            )
            self._evict()
            return result

    def rank_count_coverage(
        self,
        fingerprint: str,
        backend: Hashable,
        samples: int,
        limit: int,
    ) -> int:
        """How many of ``samples`` draws the cached blocks already serve.

        A read-only probe: no store is created, no LRU order or
        hit/miss counter moves. The serving layer's coalescer uses it to
        decide whether a burst still needs a shared sampling run (cold
        or partial coverage) or can fan out directly against warm
        blocks.
        """
        if samples < 1:
            return 0
        with self._lock:
            entry = self._entries.get(("rank-counts", (fingerprint, backend)))
            if entry is None:
                return 0
            store: RankCountStore = entry.value
            return store.coverage(samples, limit)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Snapshot of the live counters (safe to diff across queries)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                bytes=self._refresh_bytes(),
                topups=self._topups,
                entries=len(self._entries),
                migrations=self._migrations,
                carried=self._carried,
            )

    def _refresh_bytes(self) -> int:
        total = 0
        for entry in self._entries.values():
            entry.nbytes = max(0, int(entry.size_fn()))
            total += entry.nbytes
        return total

    def _evict(self) -> None:  # reprolint: disable-scope=CON001 -- externally synchronized: _evict is only called from artifact()/put paths that already hold self._lock (RLock)
        """Drop LRU entries until both the byte and entry caps hold."""
        total = self._refresh_bytes()
        while len(self._entries) > 1 and (
            total > self.max_bytes or len(self._entries) > self.max_entries
        ):
            _, entry = self._entries.popitem(last=False)
            total -= entry.nbytes
            self._evictions += 1
            metrics.inc("cache_evictions_total")


_SHARED_LOCK = threading.Lock()
_SHARED: Optional[ComputationCache] = None


def shared_cache() -> ComputationCache:
    """The process-wide cache engines opt into with ``cache="shared"``.

    Created lazily on first use; every engine constructed with
    ``cache="shared"`` joins it, which is what lets one engine's
    sampling work answer another engine's queries over content-identical
    data. (Engines default to a private cache so tests and benchmarks
    stay isolated unless they ask to share.)
    """
    global _SHARED
    with _SHARED_LOCK:
        if _SHARED is None:
            _SHARED = ComputationCache()
        return _SHARED
