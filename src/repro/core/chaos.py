"""Deterministic fault injection for the robustness test harness.

The degradation ladder (:mod:`repro.core.engine`), shard retry
(:mod:`repro.core.parallel`), and oracle retry (:mod:`repro.core.mcmc`)
paths exist to survive real-world failures: NaN scores from corrupt
inputs, slow or crashing distribution kernels, flaky sampling oracles,
and worker faults. Those paths must be *exercised*, not trusted on
faith — this module provides seeded, schedulable fault injectors so
every retry and fallback is covered by deterministic tests.

Design rules:

- Every schedule is **deterministic**: faults fire on explicit call
  indices (``calls=``), a modulus (``every=``), or a seeded Bernoulli
  draw (``rate=`` + ``seed=``). Two runs with the same schedule and the
  same call sequence inject the same faults.
- Injected failures raise :class:`~repro.core.errors.InjectedFault`, a
  distinct :class:`~repro.core.errors.EvaluationError` subtype, so
  tests can assert that the *scheduled* fault — not a genuine bug —
  drove the recovery path.
- Wrappers preserve the wrapped object's sampling semantics on
  non-faulting calls, so a fault-free schedule is a transparent proxy.

Beyond the engine-level injectors, the module carries *service-level*
faults for the serving layer's soak tests: a slow client that dribbles
its request below the server's read timeout
(:func:`slow_client_request`), a client that disconnects mid-request
(:func:`disconnecting_request`), and a request whose deadline is
already expired on arrival (:func:`deadline_expired_body`). They are
plain asyncio clients with every wait bounded, so a hung server fails
the test instead of hanging it.

Note on threading: schedule counters are shared across threads, so
*which shard* observes call number ``k`` depends on scheduling. Raising
faults still preserve bit-identical results (the retried shard
recomputes deterministically from its own seed); value-corrupting modes
(``"nan"``/``"inf"``) are scheduling-dependent under ``workers > 1``
and are intended for serial determinism tests and ingest validation.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .distributions import ArrayLike, FloatOrArray, ScoreDistribution, SizeArg
from .errors import InjectedFault
from .records import UncertainRecord

logger = logging.getLogger(__name__)

__all__ = [
    "FaultSchedule",
    "FaultyDistribution",
    "FaultyOracle",
    "FaultInjector",
    "crashing_factory",
    "deadline_expired_body",
    "disconnecting_request",
    "format_http_request",
    "slow_client_request",
]


class FaultSchedule:
    """Decides, deterministically, which calls fault.

    Parameters
    ----------
    calls:
        Explicit zero-based call indices that fault (e.g. ``{0, 3}``).
    every:
        Fault every ``every``-th call (call indices ``every-1``,
        ``2*every-1``, ...).
    rate:
        Bernoulli fault probability per call, drawn from a private
        seeded generator — deterministic for a fixed call sequence.
    seed:
        Seed for the ``rate`` draws.
    limit:
        Maximum number of faults to inject in total (``None`` =
        unlimited). Lets a test inject exactly one crash and then
        behave cleanly so the retry succeeds.

    The call counter is shared and thread-safe; see the module
    docstring for what that means under concurrency.
    """

    def __init__(
        self,
        calls: Optional[Iterable[int]] = None,
        every: Optional[int] = None,
        rate: float = 0.0,
        seed: int = 0,
        limit: Optional[int] = None,
    ) -> None:
        if every is not None and every < 1:
            raise ValueError(f"every must be >= 1, got {every!r}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate!r}")
        self.calls = frozenset(int(c) for c in (calls or ()))
        self.every = every
        self.rate = rate
        self.limit = limit
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()
        self._count = 0
        self._fired = 0

    def fire(self) -> bool:
        """Advance the call counter; report whether this call faults."""
        with self._lock:
            index = self._count
            self._count += 1
            if self.limit is not None and self._fired >= self.limit:
                return False
            fault = index in self.calls
            if not fault and self.every is not None:
                fault = (index + 1) % self.every == 0
            if not fault and self.rate > 0.0:
                fault = bool(self._rng.random() < self.rate)
            if fault:
                self._fired += 1
            return fault

    @property
    def calls_seen(self) -> int:
        """Total calls routed through this schedule."""
        with self._lock:
            return self._count

    @property
    def faults_fired(self) -> int:
        """Total faults injected so far."""
        with self._lock:
            return self._fired


class FaultyDistribution(ScoreDistribution):
    """A delegating distribution wrapper with scheduled faults.

    Wraps a real :class:`ScoreDistribution` and injects faults on
    ``sample`` / ``cdf`` / ``ppf`` calls according to ``schedule``:

    - ``mode="raise"`` — raise :class:`InjectedFault`;
    - ``mode="nan"`` / ``mode="inf"`` — corrupt the returned values;
    - ``mode="slow"`` — sleep ``delay`` seconds before answering
      (exercises deadline budgets).

    Because this class is not a known family, ``build_sampling_plan``
    routes it to the generic per-record batch — injected faults
    propagate into the columnar samplers and the parallel shards, which
    is exactly the point.
    """

    _MODES = ("raise", "nan", "inf", "slow")

    def __init__(
        self,
        inner: ScoreDistribution,
        schedule: FaultSchedule,
        mode: str = "raise",
        methods: Sequence[str] = ("sample",),
        delay: float = 0.01,
    ) -> None:
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}, got {mode!r}")
        unknown = set(methods) - {"sample", "cdf", "ppf"}
        if unknown:
            raise ValueError(f"unknown faultable methods: {sorted(unknown)}")
        self.inner = inner
        self.schedule = schedule
        self.mode = mode
        self.methods = frozenset(methods)
        self.delay = delay
        self.lower = inner.lower
        self.upper = inner.upper

    def _maybe_fault(self, method: str, value: FloatOrArray) -> FloatOrArray:
        if method not in self.methods or not self.schedule.fire():
            return value
        if self.mode == "raise":
            raise InjectedFault(
                f"scheduled fault in {type(self.inner).__name__}.{method}"
            )
        if self.mode == "slow":
            time.sleep(self.delay)
            return value
        corrupt = np.nan if self.mode == "nan" else np.inf
        if np.isscalar(value) or np.ndim(value) == 0:
            return float(corrupt)
        out = np.array(value, dtype=float)
        out.flat[0] = corrupt
        return out

    def pdf(self, x: ArrayLike) -> FloatOrArray:
        return self.inner.pdf(x)

    def cdf(self, x: ArrayLike) -> FloatOrArray:
        return self._maybe_fault("cdf", self.inner.cdf(x))

    def ppf(self, q: ArrayLike) -> FloatOrArray:
        return self._maybe_fault("ppf", self.inner.ppf(q))

    def mean(self) -> float:
        return self.inner.mean()

    def sample(
        self, rng: np.random.Generator, size: SizeArg = None
    ) -> FloatOrArray:
        return self._maybe_fault("sample", self.inner.sample(rng, size))

    def __repr__(self) -> str:
        return (
            f"FaultyDistribution({self.inner!r}, mode={self.mode!r}, "
            f"methods={sorted(self.methods)})"
        )


class FaultyOracle:
    """A callable proxy that makes a sampling oracle flaky.

    Wraps any ``oracle(state) -> float`` (the MCMC state-probability
    oracles) and raises :class:`InjectedFault` on scheduled calls.
    Oracle answers on clean calls pass through untouched, so a retry
    after a scheduled fault reproduces the true value.
    """

    def __init__(
        self, inner: Callable[..., float], schedule: FaultSchedule
    ) -> None:
        self.inner = inner
        self.schedule = schedule

    def __call__(self, *args: object, **kwargs: object) -> float:
        if self.schedule.fire():
            raise InjectedFault("scheduled oracle fault")
        return self.inner(*args, **kwargs)


class _CrashingEvaluator:
    """Attribute proxy that crashes scheduled estimator-method calls.

    Stands in for a shard's ``MonteCarloEvaluator`` inside
    ``ParallelSampler``: attribute lookups return bound-method wrappers
    that consult the shared schedule before delegating, simulating a
    worker crash mid-shard.
    """

    def __init__(self, inner: object, schedule: FaultSchedule) -> None:
        self._inner = inner
        self._schedule = schedule

    def __getattr__(self, name: str) -> object:
        value = getattr(self._inner, name)
        if not callable(value) or name.startswith("_"):
            return value

        def crashing(*args: object, **kwargs: object) -> object:
            if self._schedule.fire():
                raise InjectedFault(f"scheduled shard crash in {name}")
            return value(*args, **kwargs)

        return crashing


def crashing_factory(
    factory: Callable[..., object], schedule: FaultSchedule
) -> Callable[..., object]:
    """Wrap a ``ParallelSampler`` evaluator factory with scheduled crashes.

    Each estimator-method call on any produced evaluator consults the
    shared ``schedule``; scheduled calls raise :class:`InjectedFault`
    exactly as a crashed worker would surface. With ``limit=1`` the
    retried shard (same seed, clean call) reproduces the original
    answer bit-for-bit.
    """

    def wrapped(*args: object, **kwargs: object) -> object:
        return _CrashingEvaluator(factory(*args, **kwargs), schedule)

    return wrapped


class FaultInjector:
    """Facade for building deterministic fault harnesses in tests.

    Collects an injection log (what was wrapped, with which schedule)
    and hands out wrappers whose faults are reproducible from
    ``(seed, schedule parameters)`` alone.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._wrap_count = 0
        self.log: List[Tuple[str, str]] = []

    def schedule(
        self,
        calls: Optional[Iterable[int]] = None,
        every: Optional[int] = None,
        rate: float = 0.0,
        limit: Optional[int] = None,
    ) -> FaultSchedule:
        """Build a :class:`FaultSchedule` seeded from this injector.

        Each schedule derives its seed from ``(injector seed, creation
        index)`` so multiple schedules from one injector are mutually
        independent yet jointly reproducible.
        """
        self._wrap_count += 1
        return FaultSchedule(
            calls=calls,
            every=every,
            rate=rate,
            seed=self.seed * 1_000_003 + self._wrap_count,
            limit=limit,
        )

    def wrap_distribution(
        self,
        dist: ScoreDistribution,
        schedule: FaultSchedule,
        mode: str = "raise",
        methods: Sequence[str] = ("sample",),
        delay: float = 0.01,
    ) -> FaultyDistribution:
        """Wrap one distribution with scheduled faults."""
        self.log.append(("distribution", mode))
        return FaultyDistribution(
            dist, schedule, mode=mode, methods=methods, delay=delay
        )

    def wrap_records(
        self,
        records: Sequence[UncertainRecord],
        schedule: FaultSchedule,
        mode: str = "raise",
        methods: Sequence[str] = ("sample",),
        record_ids: Optional[Iterable[str]] = None,
        delay: float = 0.01,
    ) -> List[UncertainRecord]:
        """Wrap the scores of selected records (default: all of them)."""
        targets = None if record_ids is None else frozenset(record_ids)
        out: List[UncertainRecord] = []
        for rec in records:
            if targets is not None and rec.record_id not in targets:
                out.append(rec)
                continue
            out.append(
                UncertainRecord(
                    record_id=rec.record_id,
                    score=self.wrap_distribution(
                        rec.score, schedule, mode=mode, methods=methods,
                        delay=delay,
                    ),
                    payload=rec.payload,
                )
            )
        return out

    def wrap_oracle(
        self, oracle: Callable[..., float], schedule: FaultSchedule
    ) -> FaultyOracle:
        """Wrap an MCMC state-probability oracle with scheduled faults."""
        self.log.append(("oracle", "raise"))
        return FaultyOracle(oracle, schedule)

    def wrap_factory(
        self, factory: Callable[..., object], schedule: FaultSchedule
    ) -> Callable[..., object]:
        """Wrap a ``ParallelSampler`` factory with scheduled shard crashes."""
        self.log.append(("factory", "raise"))
        return crashing_factory(factory, schedule)
# ----------------------------------------------------------------------
# service-level fault injectors (for the serving-layer soak tests)
# ----------------------------------------------------------------------


def format_http_request(
    method: str,
    path: str,
    body: bytes = b"",
    host: str = "localhost",
) -> bytes:
    """Raw HTTP/1.1 request bytes for the service-level injectors."""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def deadline_expired_body(kind: str = "utop_rank", **fields: object) -> bytes:
    """A ``/query`` JSON body whose deadline is already spent on arrival.

    The service must map this onto a born-expired budget and answer
    with a flagged degraded result — never a 504 (see
    ``Budget.for_deadline``).
    """
    payload: dict = {"kind": kind, "deadline_ms": 0}
    payload.update(fields)
    return json.dumps(payload).encode("utf-8")


async def slow_client_request(
    host: str,
    port: int,
    raw: bytes,
    chunk_size: int = 16,
    delay: float = 0.05,
    response_timeout: float = 10.0,
) -> bytes:
    """Dribble ``raw`` to the server one small chunk at a time.

    The slow-client fault: a peer whose request arrives slower than the
    service's read timeout. A robust server must bound the read and
    close (or 408) the connection instead of pinning a handler forever.
    Returns whatever response bytes the server produced — possibly
    empty when it hung up first, which is the expected outcome for a
    sufficiently slow client.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), response_timeout
    )
    data = b""
    try:
        for start in range(0, len(raw), chunk_size):
            writer.write(raw[start : start + chunk_size])
            await asyncio.wait_for(writer.drain(), response_timeout)
            await asyncio.sleep(delay)
        data = await asyncio.wait_for(reader.read(-1), response_timeout)
    except (ConnectionError, asyncio.TimeoutError, TimeoutError) as exc:
        # The server hung up on us mid-dribble: exactly the defensive
        # behaviour the fault exists to provoke.
        logger.debug("slow client cut off by the server: %r", exc)
    finally:
        writer.close()
        try:
            await asyncio.wait_for(writer.wait_closed(), 1.0)
        except (ConnectionError, asyncio.TimeoutError, TimeoutError) as exc:
            logger.debug("slow-client close raced the server: %r", exc)
    return data


async def disconnecting_request(
    host: str,
    port: int,
    raw: bytes,
    send_bytes: int = 64,
    connect_timeout: float = 10.0,
) -> None:
    """Send only a prefix of ``raw`` and vanish (mid-request disconnect).

    The server sees an incomplete request followed by EOF; it must
    close the connection quietly rather than error or leak the handler.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), connect_timeout
    )
    try:
        writer.write(raw[: max(0, send_bytes)])
        await asyncio.wait_for(writer.drain(), connect_timeout)
    except ConnectionError as exc:
        logger.debug("disconnect fault raced the server: %r", exc)
    finally:
        writer.close()
        try:
            await asyncio.wait_for(writer.wait_closed(), 1.0)
        except (ConnectionError, asyncio.TimeoutError, TimeoutError) as exc:
            logger.debug("disconnect close raced the server: %r", exc)
