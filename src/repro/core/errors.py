"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """An uncertain-score model was constructed with invalid inputs.

    Examples: an interval with ``lo > up``, a density that does not
    integrate to one, or a duplicate record identifier.
    """


class QueryError(ReproError):
    """A ranking query was specified with invalid parameters.

    Examples: ``UTop-Rank(i, j)`` with ``i > j``, a ``k`` larger than the
    database, or a non-positive number of requested answers ``l``.
    """


class EvaluationError(ReproError):
    """Query evaluation failed or was asked to do something unsupported.

    Examples: requesting exact evaluation for a density family without a
    piecewise-polynomial representation, or exceeding an enumeration cap.
    """


class ConvergenceError(EvaluationError):
    """An iterative method (MCMC) failed to reach its convergence target."""


class InjectedFault(EvaluationError):
    """A fault deliberately raised by the chaos harness (:mod:`repro.core.chaos`).

    A distinct type so tests can assert that a *scheduled* fault — not a
    genuine estimator bug — triggered a retry or degradation path.
    """
