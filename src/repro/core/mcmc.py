"""Markov-chain Monte-Carlo evaluation of TOP-k queries (paper §VI-D).

The answer spaces of UTop-Prefix and UTop-Set are exponential in the
database size, so the paper simulates the top-k prefix/set distribution
with a Metropolis–Hastings random walk over linear extensions:

- **States** are linear extensions; the target density ``pi(omega)`` is
  the probability of the state's top-k prefix (or set).
- **Proposal**: pick ``z <= k`` random ranks; move each picked record
  upward (if below the top-k region) or downward (if inside it) by
  successive record swaps, where a swap of adjacent records commits with
  the pairwise probability of the *new* orientation (Eq. 1) and the walk
  of one record stops at its first uncommitted swap. Because a swap that
  would violate dominance has commit probability zero, proposals always
  remain valid linear extensions.
- **Multiple chains** from independently sampled starting extensions are
  run until the Gelman–Rubin statistic signals mixing; the ``l`` most
  probable states visited across chains approximate the query answer
  (paper §VI-D, "Computing Query Answers").
- **Caching** (paper §VI-D, "Caching"): pairwise probabilities and state
  probabilities are memoized across steps and across chains.

The module also provides the paper's probability upper bounds used to
report an approximation-error estimate for the best state found.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from . import metrics
from .budget import Budget
from .diagnostics import ConvergenceTrace, gelman_rubin
from .distributions import SamplingPlan, SharedPlanHandle, build_sampling_plan
from .errors import ConvergenceError, EvaluationError, QueryError
from .exact import ExactEvaluator, supports_exact
from .montecarlo import MonteCarloEvaluator
from .pairwise import PairwiseCache, probability_greater
from .metrics import MetricsRegistry, active_registry, use_registry
from .parallel import _START_METHOD, resolve_workers
from .records import UncertainRecord
from .trace import Span, activate, current_span

logger = logging.getLogger(__name__)

__all__ = [
    "ProposalResult",
    "MetropolisHastingsChain",
    "TopKSimulation",
    "MCMCResult",
    "prefix_probability_upper_bound",
    "set_probability_upper_bound",
]


def _state_seed(ids: Sequence[str]) -> int:
    """Stable per-state seed for the Monte-Carlo oracle.

    Derived from the record ids with a cryptographic hash so it is
    reproducible across processes (Python's ``hash()`` is salted per
    interpreter) and independent of which chain — or which worker
    thread — asks first.
    """
    digest = hashlib.blake2b(
        "\x1f".join(ids).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _oracle_with_retry(
    oracle: Callable[[Hashable], float],
    key: Hashable,
    retries: int,
    backoff: float,
) -> float:
    """One oracle evaluation with bounded retry-with-backoff.

    Shared by the in-process simulation (:meth:`TopKSimulation._call_oracle`)
    and worker processes, so the retry/backoff/metrics behaviour is
    identical on every execution backend. The oracle is a pure function
    of ``key``, so a successful retry reproduces the clean value.
    """
    attempts = retries + 1
    for attempt in range(1, attempts + 1):
        try:
            return oracle(key)
        except QueryError:
            # Invalid state keys fail identically forever.
            raise
        except Exception as exc:
            if attempt >= attempts:
                raise ConvergenceError(
                    f"state-probability oracle failed {attempts} "
                    f"time(s) for state {key!r}: {exc}"
                ) from exc
            logger.warning(
                "oracle failed for state %r (%s: %s); retry %d/%d",
                key,
                type(exc).__name__,
                exc,
                attempt,
                retries,
            )
            metrics.inc("mcmc_oracle_retries_total")
            if backoff > 0.0:
                time.sleep(backoff * (2.0 ** (attempt - 1)))
    raise ConvergenceError(  # pragma: no cover - loop always returns/raises
        f"oracle produced no value for state {key!r}"
    )


def prefix_probability_upper_bound(rank_matrix: np.ndarray, k: int) -> float:
    """Upper bound on any top-k *prefix* probability (paper §VI-D).

    The prefix event requires record occurrences at ranks ``1..k``
    simultaneously, so its probability cannot exceed
    ``min_{i<=k} max_t eta_i(t)``.
    """
    if k < 1 or k > rank_matrix.shape[1]:
        raise QueryError(f"k={k} outside the rank matrix width")
    return float(rank_matrix[:, :k].max(axis=0).min())


def set_probability_upper_bound(rank_matrix: np.ndarray, k: int) -> float:
    """Upper bound on any top-k *set* probability (paper §VI-D).

    A top-k set needs ``k`` records simultaneously inside ranks
    ``1..k``, so its probability cannot exceed the k-th largest
    ``eta_{1..k}(t)`` value.
    """
    if k < 1 or k > rank_matrix.shape[1]:
        raise QueryError(f"k={k} outside the rank matrix width")
    mass = np.sort(rank_matrix[:, :k].sum(axis=1))[::-1]
    return float(min(mass[k - 1], 1.0))


@dataclass
class ProposalResult:
    """One proposal draw: candidate state and proposal densities."""

    state: Tuple[int, ...]
    forward: float
    reverse: float
    changed: bool


class MetropolisHastingsChain:  # reprolint: disable-scope=CON001 -- thread-confined: each chain worker owns exactly one instance; state never crosses threads until the serial merge in run_chains
    """A single M-H chain over linear extensions.

    Parameters
    ----------
    records:
        Database order used to interpret state indices.
    k:
        Size of the top-k region driving the target density.
    target:
        ``"prefix"`` or ``"set"``; selects what ``pi`` measures.
    state_probability:
        Callable mapping a state key (tuple of record ids for prefixes,
        frozenset for sets) to its probability.
    pairwise:
        Callable ``(record_a, record_b) -> Pr(a > b)`` used by the
        proposal; inject a cached version to enable §VI-D caching.
    rng:
        Chain-private random generator.
    initial:
        Starting state as a tuple of record indices (a valid extension).
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        k: int,
        target: str,
        state_probability: Callable[[Hashable], float],
        pairwise: Callable[[UncertainRecord, UncertainRecord], float],
        rng: np.random.Generator,
        initial: Tuple[int, ...],
    ) -> None:
        self.records = records
        self.k = k
        self.target = target
        self._pi_of_key = state_probability
        self._pairwise = pairwise
        self.rng = rng
        self.state = tuple(initial)
        self.pi = self._pi(self.state)
        self.trace: List[float] = [self.pi]
        self.visited: Dict[Hashable, float] = {self._key(self.state): self.pi}
        #: How many steps the chain spent at each state key. Per the
        #: paper (§III), at stationarity the relative visit frequency
        #: estimates pi(x) — an alternative estimator to the exact
        #: per-state probabilities in ``visited``.
        self.visit_counts: Dict[Hashable, int] = {self._key(self.state): 1}
        self.accepted = 0
        self.steps = 0

    # -- cross-process state round-trip --------------------------------

    def export_state(self) -> Dict[str, Hashable]:
        """The chain's mutable walk state as one picklable payload.

        Everything a worker process needs to continue the walk — and
        everything the parent needs back afterwards: the current state
        and its ``pi``, the trace, the visited/visit-count maps, the
        acceptance tally, and the chain's generator (NumPy generators
        pickle with their exact bit-generator state, so the continued
        walk consumes the same stream the in-process walk would).
        """
        return {
            "state": self.state,
            "pi": self.pi,
            "trace": self.trace,
            "visited": self.visited,
            "visit_counts": self.visit_counts,
            "accepted": self.accepted,
            "steps": self.steps,
            "rng": self.rng,
        }

    def import_state(self, data: Dict[str, Hashable]) -> None:
        """Adopt walk state previously captured by :meth:`export_state`."""
        self.state = tuple(data["state"])
        self.pi = float(data["pi"])
        self.trace = list(data["trace"])
        self.visited = dict(data["visited"])
        self.visit_counts = dict(data["visit_counts"])
        self.accepted = int(data["accepted"])
        self.steps = int(data["steps"])
        self.rng = data["rng"]

    @classmethod
    def from_state(
        cls,
        records: Sequence[UncertainRecord],
        k: int,
        target: str,
        state_probability: Callable[[Hashable], float],
        pairwise: Callable[[UncertainRecord, UncertainRecord], float],
        data: Dict[str, Hashable],
    ) -> "MetropolisHastingsChain":
        """Rebuild a chain around exported state without re-running the
        initial oracle call (``__init__`` would recompute ``pi``)."""
        chain = cls.__new__(cls)
        chain.records = records
        chain.k = k
        chain.target = target
        chain._pi_of_key = state_probability
        chain._pairwise = pairwise
        chain.import_state(data)
        return chain

    def _key(self, state: Tuple[int, ...]) -> Hashable:
        ids = tuple(self.records[i].record_id for i in state[: self.k])
        return ids if self.target == "prefix" else frozenset(ids)

    def _pi(self, state: Tuple[int, ...]) -> float:
        return self._pi_of_key(self._key(state))

    # ------------------------------------------------------------------
    # proposal (paper §VI-D, "Sampling Space")
    # ------------------------------------------------------------------

    def propose(self) -> ProposalResult:
        """Draw a candidate state with the paper's shuffling proposal."""
        state = list(self.state)
        n = len(state)
        z = int(self.rng.integers(1, self.k + 1))
        forward = 1.0
        reverse = 1.0
        changed = False
        for _ in range(z):
            r = int(self.rng.integers(0, n))
            direction = 1 if r < self.k else -1
            pos = r
            while True:  # reprolint: disable=ROB001,ROB002 -- bounded: the walk exits at the array ends or at the first uncommitted swap
                m = pos + direction
                if m < 0 or m >= n:
                    break
                mover = self.records[state[pos]]
                neighbour = self.records[state[m]]
                if direction == 1:
                    #

                    # Moving downward: after the swap the neighbour sits
                    # above the mover, which happens with Pr(neighbour >
                    # mover).
                    commit = self._pairwise(neighbour, mover)
                else:
                    # Moving upward: the mover overtakes the neighbour.
                    commit = self._pairwise(mover, neighbour)
                if self.rng.random() >= commit:
                    break  # first uncommitted swap stops this record
                state[pos], state[m] = state[m], state[pos]
                forward *= commit
                # Undoing this swap restores the original orientation,
                # which the reverse move commits with the complement.
                reverse *= 1.0 - commit
                changed = True
                pos = m
        return ProposalResult(tuple(state), forward, reverse, changed)

    def step(self) -> bool:
        """Advance one M-H step; returns whether the move was accepted."""
        proposal = self.propose()
        self.steps += 1
        if not proposal.changed:
            self.trace.append(self.pi)
            key = self._key(self.state)
            self.visit_counts[key] = self.visit_counts.get(key, 0) + 1
            return False
        pi_new = self._pi(proposal.state)
        key_new = self._key(proposal.state)
        best = self.visited.get(key_new)
        if best is None or pi_new > best:
            self.visited[key_new] = pi_new
        if self.pi <= 0.0:
            alpha = 1.0
        else:
            alpha = min(
                (pi_new * proposal.reverse) / (self.pi * proposal.forward),
                1.0,
            )
        if self.rng.random() < alpha:
            self.state = proposal.state
            self.pi = pi_new
            self.accepted += 1
            self.trace.append(self.pi)
            self.visit_counts[key_new] = (
                self.visit_counts.get(key_new, 0) + 1
            )
            return True
        self.trace.append(self.pi)
        key = self._key(self.state)
        self.visit_counts[key] = self.visit_counts.get(key, 0) + 1
        return False

    def run(self, steps: int) -> None:
        """Advance the chain ``steps`` times."""
        for _ in range(steps):
            self.step()


@dataclass
class MCMCResult:
    """Outcome of a multi-chain top-k simulation.

    Attributes
    ----------
    answers:
        The ``l`` most probable states discovered, as ``(key,
        probability)`` pairs; keys are record-id tuples for prefix
        targets and frozensets for set targets.
    trace:
        Gelman–Rubin observations per epoch.
    converged:
        Whether the PSRF threshold was reached before the step budget.
    total_steps / acceptance_rate / elapsed:
        Aggregate simulation statistics.
    upper_bound:
        The paper's probability upper bound for any state, when the
        caller supplied a rank-probability matrix; ``None`` otherwise.
    partial:
        ``True`` when a resource budget stopped the walk before its
        step budget or convergence; the answers are best-so-far (chains
        record their initial states at construction, so the answer list
        is never empty).
    stop_reason:
        Why the budget stopped the walk (``"cancelled"``/``"deadline"``)
        or ``None`` for a clean run.
    """

    answers: List[Tuple[Hashable, float]]
    trace: ConvergenceTrace
    converged: bool
    total_steps: int
    acceptance_rate: float
    elapsed: float
    upper_bound: Optional[float] = None
    partial: bool = False
    stop_reason: Optional[str] = None
    states_visited: int = 0
    #: Total probability of the distinct states visited. Prefix (and
    #: set) events are mutually exclusive, so this is the share of the
    #: whole answer space the walk has covered — 1.0 means the chains
    #: have seen every state that matters.
    probability_mass: float = 0.0
    #: Relative visit frequency per state across all chains — the
    #: paper's §III estimator of pi(x); converges to the normalized
    #: state probabilities at stationarity.
    visit_frequencies: Dict[Hashable, float] = field(default_factory=dict)

    @property
    def error_estimate(self) -> Optional[float]:
        """Paper's approximation-error estimate: bound minus best found."""
        if self.upper_bound is None or not self.answers:
            return None
        return max(self.upper_bound - self.answers[0][1], 0.0)


class TopKSimulation:
    """Multi-chain Metropolis–Hastings driver for TOP-k queries.

    Parameters
    ----------
    records:
        The (pruned) database.
    k:
        Answer length.
    target:
        ``"prefix"`` for UTop-Prefix, ``"set"`` for UTop-Set.
    n_chains:
        Number of independent chains (paper recommends dispersed starts;
        Fig. 14 sweeps 20-80).
    rng:
        Seed generator; chains receive independent child generators.
    seed:
        Seed used to build the generator when ``rng`` is not given;
        defaults to ``0`` so simulations are reproducible by default.
    state_probability:
        Optional override for the state-probability oracle.
    oracle:
        ``"auto"`` (exact when densities allow it and the database is
        small enough that per-state integrals stay cheap, Monte-Carlo
        otherwise), ``"exact"``, or ``"montecarlo"``. Ignored when
        ``state_probability`` is given.
    pi_samples:
        Sample count for the Monte-Carlo oracle.
    exact_oracle_limit:
        Largest database size for which ``oracle="auto"`` picks exact.
    use_pairwise_cache:
        Toggle for the §VI-D pairwise-integral cache (the caching
        ablation benchmark switches this off).
    workers:
        Thread count (or ``"auto"``/``None``) for running chains in
        parallel within each epoch. Chains are independent walks and
        the state/pairwise oracles are deterministic per key, so the
        simulation result is identical for every worker count.
    oracle_retries:
        How many times a failed state-probability oracle call is
        retried (with exponential backoff) before the failure surfaces
        as :class:`~repro.core.errors.ConvergenceError`. The oracle is
        a pure function of the state key, so a retry after a transient
        fault reproduces the exact value the clean call would have
        returned.
    retry_backoff:
        Base sleep in seconds before the ``i``-th oracle retry
        (``retry_backoff * 2**i``); set to 0 in tests.
    plan:
        Optional precompiled sampling plan for the same records (used
        only to draw initial chain states); lets the computation cache
        share one compiled plan across simulations.
    pairwise_cache:
        Optional externally owned Eq. 1 memo. When given (and
        ``use_pairwise_cache`` is on) the simulation reads and feeds
        this shared cache instead of a private one, so pairwise
        integrals are shared with the exact and rank-aggregation
        paths.
    backend:
        ``"thread"`` (default), ``"process"``, or ``"auto"``. With
        ``"process"``, each epoch ships chain walk states to a pool of
        worker processes that rebuild the state-probability oracle from
        a shared-memory descriptor and continue the walks there. Chain
        generators round-trip with their exact bit-generator state and
        the oracles are pure functions of the state key, so results are
        bit-identical to the thread backend. Requires a built-in oracle
        (a custom ``state_probability`` closure cannot be shipped to
        another process); ``"auto"`` falls back to threads in that case
        or on single-core hosts.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        k: int,
        target: str = "prefix",
        n_chains: int = 10,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        state_probability: Optional[Callable[[Hashable], float]] = None,
        oracle: str = "auto",
        pi_samples: int = 5000,
        use_pairwise_cache: bool = True,
        exact_oracle_limit: int = 60,
        workers: Union[int, str, None] = None,
        oracle_retries: int = 2,
        retry_backoff: float = 0.05,
        plan: Optional[SamplingPlan] = None,
        pairwise_cache: Optional[PairwiseCache] = None,
        backend: str = "thread",
    ) -> None:
        if target not in ("prefix", "set"):
            raise QueryError(f"unknown simulation target {target!r}")
        if backend not in ("thread", "process", "auto"):
            raise QueryError(f"unknown execution backend {backend!r}")
        if k < 1 or k > len(records):
            raise QueryError(f"invalid k={k} for database of {len(records)}")
        if n_chains < 2:
            raise QueryError("need at least two chains for convergence checks")
        self.records = list(records)
        self.k = k
        self.target = target
        self.n_chains = n_chains
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.workers = resolve_workers(workers, tasks=n_chains)
        self._by_id = {rec.record_id: rec for rec in self.records}
        if plan is not None:
            # A shared precompiled plan (typically the engine cache's
            # compile_plan result). It only seeds initial chain states,
            # so tie-perturbed shared plans are fine — if anything they
            # respect the tie semantics better than a bare rebuild.
            self._plan: SamplingPlan = plan
        else:
            self._plan = build_sampling_plan(
                [rec.score for rec in self.records]
            )
        if oracle_retries < 0:
            raise QueryError("oracle_retries must be non-negative")
        self.oracle_retries = oracle_retries
        self.retry_backoff = retry_backoff
        self._state_cache: Dict[Hashable, float] = {}
        # The state-probability memo is shared across chain worker
        # threads (paper §VI-D "Caching"), so reads/writes take a lock.
        self._state_lock = threading.Lock()
        # Oracle descriptor for the process backend: worker processes
        # rebuild the oracle from (kind, seed, pi_samples) rather than
        # receiving the closure, which cannot be pickled. ``_build_oracle``
        # overwrites kind/seed when it constructs a built-in oracle.
        self._oracle_kind = "custom"
        self._oracle_seed: Optional[int] = None
        self._pi_samples = pi_samples
        self._oracle = state_probability or self._build_oracle(
            oracle, pi_samples, exact_oracle_limit
        )
        if backend == "process" and self._oracle_kind == "custom":
            raise QueryError(
                "backend='process' cannot ship a custom state_probability "
                "callable to worker processes; use backend='thread'"
            )
        if backend == "auto":
            backend = (
                "process"
                if self._oracle_kind != "custom"
                and self.workers > 1
                and (os.cpu_count() or 1) > 1
                else "thread"
            )
        self.backend = backend
        if use_pairwise_cache:
            # An injected cache (the engine's per-database Eq. 1 memo)
            # lets MCMC proposals reuse integrals computed by the exact
            # and rank-aggregation paths, and vice versa.
            if pairwise_cache is None:
                pairwise_cache = PairwiseCache()
            self._pairwise_cache: Optional[PairwiseCache] = pairwise_cache
            self._pairwise = self._pairwise_cache.probability
        else:
            self._pairwise_cache = None
            self._pairwise = probability_greater

    # ------------------------------------------------------------------
    # oracles
    # ------------------------------------------------------------------

    def _build_oracle(
        self, oracle: str, pi_samples: int, exact_limit: int
    ) -> Callable[[Hashable], float]:
        if oracle == "auto":
            use_exact = (
                supports_exact(self.records)
                and len(self.records) <= exact_limit
            )
            oracle = "exact" if use_exact else "montecarlo"
        if oracle == "exact":
            self._oracle_kind = "exact"
            evaluator = ExactEvaluator(self.records)
            if self.target == "prefix":
                return lambda key: evaluator.prefix_probability(list(key))
            return lambda key: evaluator.top_set_probability(list(key))
        if oracle != "montecarlo":
            raise QueryError(f"unknown state-probability oracle {oracle!r}")
        self._oracle_kind = "montecarlo"
        self._oracle_seed = int(self.rng.integers(2**63))
        sampler = MonteCarloEvaluator(self.records, seed=self._oracle_seed)

        # Sequential importance sampling (prefixes) and the CDF-product
        # estimator (sets) are unbiased and strictly positive for
        # feasible states, unlike plain indicator frequencies, so the
        # walk never sees spurious zeros. Each state is estimated under
        # its own id-derived seed stream, so the oracle is a pure
        # function of the state key: chains can query it concurrently
        # (or in any order) without changing any estimate.
        if self.target == "prefix":

            def prefix_oracle(key: Hashable) -> float:
                ids = list(key)
                return sampler.prefix_probability_sis(
                    ids, pi_samples, seed=_state_seed(ids)
                )

            return prefix_oracle

        def set_oracle(key: Hashable) -> float:
            # Sort the frozenset's ids: iteration order is salted by
            # PYTHONHASHSEED, and both the seed and the sub-plan sample
            # order must not depend on it.
            ids = sorted(key)
            return sampler.top_set_probability_cdf(
                ids, pi_samples, seed=_state_seed(ids)
            )

        return set_oracle

    def _call_oracle(self, key: Hashable) -> float:
        """One oracle evaluation with bounded retry-with-backoff.

        A transient oracle failure (flaky sampling backend, injected
        fault) is retried up to ``oracle_retries`` times; because the
        oracle is a pure function of ``key`` — Monte-Carlo oracles seed
        from a hash of the state's record ids — a successful retry
        yields exactly the value the clean call would have. Persistent
        failure surfaces as :class:`ConvergenceError` with the original
        exception chained.
        """
        return _oracle_with_retry(
            self._oracle, key, self.oracle_retries, self.retry_backoff
        )

    def _cached_pi(self, key: Hashable) -> float:
        with self._state_lock:
            value = self._state_cache.get(key)
        if value is None:
            # Oracle calls run outside the lock (they can be expensive);
            # the oracle is deterministic per key, so two chains racing
            # on the same state store the same value.
            value = self._call_oracle(key)
            with self._state_lock:
                value = self._state_cache.setdefault(key, value)
        return value

    def _initial_state(self, rng: np.random.Generator) -> Tuple[int, ...]:
        """Sample a starting extension by drawing and ranking scores."""
        scores = self._plan.sample(rng, 1)[0]
        order = sorted(
            range(len(self.records)),
            key=lambda i: (-scores[i], self.records[i].record_id),
        )
        return tuple(order)

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def _run_epochs(
        self,
        chains: List[MetropolisHastingsChain],
        pool: Optional[ThreadPoolExecutor],
        trace: ConvergenceTrace,
        start: float,
        max_steps: int,
        epoch: int,
        psrf_threshold: float,
        min_epochs: int,
        budget: Optional[Budget] = None,
        advance: Optional[Callable[[int, int], None]] = None,
        advance_all: Optional[Callable[[int], None]] = None,
    ) -> Tuple[bool, int, Optional[str]]:
        """Advance all chains epoch by epoch until mixing or the budget.

        With a thread pool, each chain advances on its own worker; a
        chain only touches its private generator and the shared
        memoization caches, whose entries are pure functions of their
        keys, so any interleaving produces the same chains. When
        ``advance_all`` is given (the process backend) it advances the
        whole ensemble one epoch itself and ``pool``/``advance`` are
        ignored.

        A resource ``budget`` is consulted at epoch boundaries: when it
        expires, the walk stops where it stands and the caller reports
        a best-so-far partial result (the third return element carries
        the stop reason).
        """
        converged = False
        done = 0
        stop_reason: Optional[str] = None
        while done < max_steps:
            if budget is not None and budget.expired():
                stop_reason = budget.exhausted_reason()
                break
            todo = min(epoch, max_steps - done)
            if advance is None:
                step = lambda index, steps: chains[index].run(steps)
            else:
                step = advance
            if advance_all is not None:
                advance_all(todo)
            elif pool is not None:
                list(
                    pool.map(
                        lambda index: step(index, todo),
                        range(len(chains)),
                    )
                )
            else:
                for index in range(len(chains)):
                    step(index, todo)
            done += todo
            metrics.inc("mcmc_steps_total", float(todo * len(chains)))
            try:
                # Summarize states by log-probability: pi is heavy-tailed
                # across the walk, and the PSRF of the raw values would
                # be dominated by rare high-probability excursions.
                summaries = [
                    np.log(np.maximum(np.asarray(c.trace), 1e-300))
                    for c in chains
                ]
                psrf = gelman_rubin(summaries)
            except EvaluationError as exc:
                # Chains too short for a PSRF yet (tiny epoch budgets);
                # keep running and try again next epoch.
                logger.warning(
                    "Gelman-Rubin unavailable at step %d: %s", done, exc
                )
                psrf = float("inf")
            trace.steps.append(done)
            trace.psrf.append(psrf)
            trace.elapsed.append(time.perf_counter() - start)
            if len(trace.steps) >= min_epochs and psrf <= psrf_threshold:
                converged = True
                break
        return converged, done, stop_reason

    def run(
        self,
        max_steps: int = 5000,
        epoch: int = 50,
        psrf_threshold: float = 1.05,
        top_l: int = 1,
        rank_matrix: Optional[np.ndarray] = None,
        min_epochs: int = 2,
        budget: Optional[Budget] = None,
        require_convergence: bool = False,
    ) -> MCMCResult:
        """Run all chains until mixing or the per-chain step budget.

        Parameters
        ----------
        max_steps:
            Per-chain step budget.
        epoch:
            Steps between Gelman–Rubin evaluations.
        psrf_threshold:
            PSRF value that declares convergence (1.0 is perfect mixing).
        top_l:
            Number of best states to report.
        rank_matrix:
            Optional ``eta`` matrix enabling the probability upper bound
            / error estimate of §VI-D.
        min_epochs:
            Minimum epochs before convergence may be declared.
        budget:
            Optional resource :class:`~repro.core.budget.Budget`
            checked at epoch boundaries; on expiry the best states
            found so far are returned with ``partial=True``.
        require_convergence:
            When ``True``, a walk that finishes its step budget without
            reaching ``psrf_threshold`` raises
            :class:`~repro.core.errors.ConvergenceError` instead of
            returning an unconverged result. (A budget-stopped walk
            still returns partial answers — running out of resources is
            a degradation, not a failure.)
        """
        start = time.perf_counter()
        # One root per run() call (consumed from self.rng, so repeated
        # runs explore fresh trajectories); each chain gets two spawned
        # child streams — walk randomness and starting state — that are
        # independent of every other chain by SeedSequence construction.
        root = np.random.SeedSequence(int(self.rng.integers(2**63)))
        streams = root.spawn(2 * self.n_chains)
        chains = [
            MetropolisHastingsChain(
                self.records,
                self.k,
                self.target,
                self._cached_pi,
                self._pairwise,
                np.random.default_rng(streams[2 * c]),
                self._initial_state(np.random.default_rng(streams[2 * c + 1])),
            )
            for c in range(self.n_chains)
        ]
        use_processes = self.backend == "process" and self.workers > 1
        pool = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers > 1 and not use_processes
            else None
        )
        # Chains may advance on worker threads, which start with a
        # fresh context: capture the active span and metrics registry
        # here and re-install both around every chain advancement, so
        # per-chain spans attach to the query's trace and oracle-retry
        # counters hit the query's registry.
        parent = current_span()
        registry = active_registry()
        chain_spans: Optional[List[Span]] = (
            None
            if parent is None
            else [
                parent.child("chain", chain=c)
                for c in range(self.n_chains)
            ]
        )

        def advance(index: int, steps: int) -> None:
            with use_registry(registry):
                if chain_spans is None:
                    chains[index].run(steps)
                else:
                    with activate(chain_spans[index]):
                        chains[index].run(steps)

        # Process backend: the compiled plan's arrays plus a picklable
        # oracle descriptor go into one shared-memory segment; each
        # epoch round-trips every chain's walk state to a worker that
        # continues the walk against its own rebuilt (deterministic)
        # oracle. The PSRF check, budget, spans, and merge stay here.
        process_pool: Optional[ProcessPoolExecutor] = None
        segment: Optional[SharedPlanHandle] = None
        advance_all: Optional[Callable[[int], None]] = None
        if use_processes:
            segment = self._plan.export_shared(
                extra={
                    "records": self.records,
                    "mcmc": {
                        "k": self.k,
                        "target": self.target,
                        "oracle_kind": self._oracle_kind,
                        "oracle_seed": self._oracle_seed,
                        "pi_samples": self._pi_samples,
                        "use_pairwise_cache": self._pairwise_cache
                        is not None,
                        "oracle_retries": self.oracle_retries,
                        "retry_backoff": self.retry_backoff,
                    },
                }
            )
            process_pool = ProcessPoolExecutor(
                max_workers=min(self.workers, self.n_chains),
                mp_context=multiprocessing.get_context(_START_METHOD),
            )

            def advance_all(todo: int) -> None:
                nonlocal process_pool
                payloads = [
                    {
                        "segment": segment.name,
                        "state": chain.export_state(),
                        "steps": todo,
                    }
                    for chain in chains
                ]
                results = None
                for attempt in (0, 1):
                    try:
                        results = list(
                            process_pool.map(_advance_chain, payloads)
                        )
                        break
                    except BrokenProcessPool as exc:
                        # A worker died mid-epoch. The pre-epoch chain
                        # states are still in ``payloads``, so a retry
                        # on a fresh pool replays the epoch and lands
                        # on bit-identical chains.
                        process_pool.shutdown(
                            wait=False, cancel_futures=True
                        )
                        process_pool = ProcessPoolExecutor(
                            max_workers=min(self.workers, self.n_chains),
                            mp_context=multiprocessing.get_context(
                                _START_METHOD
                            ),
                        )
                        if attempt:
                            raise EvaluationError(
                                "MCMC epoch failed twice: worker "
                                "processes crashed"
                            ) from exc
                        logger.warning(
                            "worker process crashed mid-epoch; retrying "
                            "the epoch with identical chain states"
                        )
                        registry.inc("mcmc_epoch_retries_total")
                for chain, (state, counter_rows, pairwise_rows) in zip(
                    chains, results
                ):
                    chain.import_state(state)
                    registry.absorb_counters(counter_rows)
                    if self._pairwise_cache is not None:
                        self._pairwise_cache.merge(pairwise_rows)

        trace = ConvergenceTrace(steps=[], psrf=[], elapsed=[])
        converged = False
        done = 0
        stop_reason: Optional[str] = None
        try:
            converged, done, stop_reason = self._run_epochs(
                chains, pool, trace, start, max_steps, epoch,
                psrf_threshold, min_epochs, budget=budget,
                advance=advance, advance_all=advance_all,
            )
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            if process_pool is not None:
                process_pool.shutdown(wait=True)
            if segment is not None:
                segment.unlink()
            if chain_spans is not None:
                for chain_span, chain in zip(chain_spans, chains):
                    chain_span.set(
                        steps=done, states_visited=len(chain.visited)
                    )
                    chain_span.end()
        if require_convergence and not converged and stop_reason is None:
            last_psrf = trace.psrf[-1] if trace.psrf else float("inf")
            raise ConvergenceError(
                f"MCMC failed to converge: PSRF {last_psrf:.4f} > "
                f"{psrf_threshold} after {done} steps per chain "
                f"({self.n_chains} chains)"
            )

        merged: Dict[Hashable, float] = {}
        visit_totals: Dict[Hashable, int] = {}
        for chain in chains:
            for key, value in chain.visited.items():
                existing = merged.get(key)
                if existing is None or value > existing:
                    merged[key] = value
            for key, count in chain.visit_counts.items():
                visit_totals[key] = visit_totals.get(key, 0) + count
        total_visits = sum(visit_totals.values())
        visit_frequencies = {
            key: count / total_visits for key, count in visit_totals.items()
        } if total_visits else {}
        ranked = sorted(merged.items(), key=lambda kv: (-kv[1], str(kv[0])))
        bound = None
        if rank_matrix is not None:
            bound = (
                prefix_probability_upper_bound(rank_matrix, self.k)
                if self.target == "prefix"
                else set_probability_upper_bound(rank_matrix, self.k)
            )
        total_steps = sum(c.steps for c in chains)
        accepted = sum(c.accepted for c in chains)
        return MCMCResult(
            answers=ranked[:top_l],
            trace=trace,
            converged=converged,
            total_steps=total_steps,
            acceptance_rate=accepted / total_steps if total_steps else 0.0,
            elapsed=time.perf_counter() - start,
            upper_bound=bound,
            partial=stop_reason is not None,
            stop_reason=stop_reason,
            states_visited=len(merged),
            probability_mass=min(sum(merged.values()), 1.0),
            visit_frequencies=visit_frequencies,
        )

    @property
    def pairwise_cache_stats(self) -> Optional[Tuple[int, int]]:
        """(hits, misses) of the pairwise cache, if caching is enabled."""
        if self._pairwise_cache is None:
            return None
        return (self._pairwise_cache.hits, self._pairwise_cache.misses)


# ----------------------------------------------------------------------
# process-backend worker side
# ----------------------------------------------------------------------

def _worker_oracle(
    records: Sequence[UncertainRecord],
    target: str,
    cfg: Dict[str, Any],
) -> Callable[[Hashable], float]:
    """Rebuild the state-probability oracle from its shipped descriptor.

    Mirrors :meth:`TopKSimulation._build_oracle` exactly: the exact
    oracle is deterministic by construction, and the Monte-Carlo oracle
    re-seeds from the parent's captured draw and then seeds every state
    estimate from the state key, so a worker's oracle returns the same
    float the parent's would for every key.
    """
    if cfg["oracle_kind"] == "exact":
        evaluator = ExactEvaluator(records)
        if target == "prefix":
            return lambda key: evaluator.prefix_probability(list(key))
        return lambda key: evaluator.top_set_probability(list(key))
    sampler = MonteCarloEvaluator(records, seed=cfg["oracle_seed"])
    pi_samples = cfg["pi_samples"]
    if target == "prefix":

        def prefix_oracle(key: Hashable) -> float:
            ids = list(key)
            return sampler.prefix_probability_sis(
                ids, pi_samples, seed=_state_seed(ids)
            )

        return prefix_oracle

    def set_oracle(key: Hashable) -> float:
        ids = sorted(key)
        return sampler.top_set_probability_cdf(
            ids, pi_samples, seed=_state_seed(ids)
        )

    return set_oracle


class _WorkerChainContext:
    """Per-process attachment to one simulation's shared segment.

    Built once per (worker process, segment) and cached in
    :data:`_CHAIN_CONTEXTS`: the records, rebuilt oracle, pairwise
    memo, and state-probability cache all persist across the epochs a
    worker serves, so the §VI-D caches warm up in the workers exactly
    as they do in the parent's threads.
    """

    __slots__ = (
        "records",
        "k",
        "target",
        "pairwise",
        "_pairwise_memo",
        "_pairwise_shipped",
        "_oracle",
        "_retries",
        "_backoff",
        "_cache",
    )

    def __init__(self, name: str) -> None:
        plan = SamplingPlan.attach_shared(SharedPlanHandle(name))
        extra = plan.shared_extra
        self.records = extra["records"]
        cfg = extra["mcmc"]
        self.k = int(cfg["k"])
        self.target = str(cfg["target"])
        self._retries = int(cfg["oracle_retries"])
        self._backoff = float(cfg["retry_backoff"])
        if cfg["use_pairwise_cache"]:
            self._pairwise_memo: Optional[PairwiseCache] = PairwiseCache()
            self.pairwise = self._pairwise_memo.probability
        else:
            self._pairwise_memo = None
            self.pairwise = probability_greater
        self._pairwise_shipped = 0
        self._oracle = _worker_oracle(self.records, self.target, cfg)
        self._cache: Dict[Hashable, float] = {}

    def cached_pi(self, key: Hashable) -> float:
        """Memoized oracle lookup (single-threaded inside a worker)."""
        value = self._cache.get(key)
        if value is None:
            value = _oracle_with_retry(
                self._oracle, key, self._retries, self._backoff
            )
            self._cache[key] = value
        return value

    def drain_pairwise(
        self,
    ) -> List[Tuple[Tuple[str, str], float]]:
        """Pairwise integrals computed since the last drain.

        Shipped home so the parent's shared §VI-D memo warms up exactly
        as it would have had the proposals run on parent threads. After
        a worker crash the replacement worker re-ships from scratch;
        the parent's merge is idempotent, so that only costs bytes.
        """
        if self._pairwise_memo is None:
            return []
        fresh = self._pairwise_memo.snapshot(self._pairwise_shipped)
        self._pairwise_shipped += len(fresh)  # reprolint: disable=CON001 -- worker-process-side counter: each pool worker is single-threaded, so its context is never shared
        return fresh


#: Worker-global context cache, keyed by segment name. Worker processes
#: are single-threaded (one task at a time), so plain dict access is
#: safe; entries live until the worker exits with the pool.
_CHAIN_CONTEXTS: Dict[str, _WorkerChainContext] = {}


def _worker_chain_context(name: str) -> _WorkerChainContext:
    context = _CHAIN_CONTEXTS.get(name)
    if context is None:
        context = _WorkerChainContext(name)
        _CHAIN_CONTEXTS[name] = context  # reprolint: disable=CON001 -- populated only inside single-threaded pool workers, never in the parent
    return context


def _advance_chain(
    payload: Dict[str, Any],
) -> Tuple[
    Dict[str, Hashable],
    List[Tuple[str, Dict[str, str], float]],
    List[Tuple[Tuple[str, str], float]],
]:
    """Process-pool task: continue one chain's walk for one epoch.

    Rebuilds a chain shell around the shipped walk state, advances it
    under a private metrics registry, and returns the new state, the
    counter rows for the parent to absorb, and the pairwise integrals
    computed since the worker's last report (for the parent's shared
    memo).
    """
    context = _worker_chain_context(payload["segment"])
    chain = MetropolisHastingsChain.from_state(
        context.records,
        context.k,
        context.target,
        context.cached_pi,
        context.pairwise,
        payload["state"],
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        chain.run(payload["steps"])
    return (
        chain.export_state(),
        registry.counter_items(),
        context.drain_pairwise(),
    )
