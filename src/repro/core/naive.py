"""Naive comparators the paper argues against (§I).

Two simple ways to force a total order out of uncertain scores, both
implemented here as baselines so their failure modes can be measured:

- :func:`expected_score_ranking` — replace each score interval by its
  expectation and sort. The paper's introduction shows why this is
  unsound: records with equal expectations get an arbitrary order even
  when the interval geometry makes some rankings five times likelier
  than others (the [0,100]/[40,60]/[30,70] example).
- :func:`mode_aggregation_ranking` — rank by most probable single rank
  (argmax of each record's rank distribution); can produce rankings
  that assign several records the same "best" rank.

Both return deterministic rankings with the library's tie-breaking, so
they slot into the same comparison harnesses as the real queries.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .records import UncertainRecord

__all__ = ["expected_score_ranking", "mode_aggregation_ranking"]


def expected_score_ranking(
    records: Sequence[UncertainRecord],
) -> List[UncertainRecord]:
    """Rank records by expected score, ties broken by record id.

    The paper's §I criticism: for score intervals with large variance
    this produces orders independent of how the intervals intersect.
    """
    return sorted(records, key=lambda r: (-r.score.mean(), r.record_id))


def mode_aggregation_ranking(
    rank_matrix: np.ndarray,
    records: Sequence[UncertainRecord],
) -> List[UncertainRecord]:
    """Rank records by their individually most probable rank.

    ``rank_matrix[t, r]`` is ``eta_{r+1}(t)``. Records are ordered by
    (argmax rank, descending probability at it, record id). Unlike the
    footrule aggregation of Theorem 2 this is not a proper assignment —
    multiple records may claim the same mode — which is exactly why the
    paper solves a matching problem instead; the function exists as the
    strawman comparator.
    """
    matrix = np.asarray(rank_matrix, dtype=float)
    if matrix.shape[0] != len(records):
        raise ValueError("need one rank-distribution row per record")
    keyed = []
    for idx, rec in enumerate(records):
        mode = int(np.argmax(matrix[idx]))
        keyed.append((mode, -float(matrix[idx, mode]), rec.record_id, rec))
    keyed.sort()
    return [rec for _m, _p, _rid, rec in keyed]
