"""Shared numeric helpers for probability safety.

Centralizes the ``min(max(x, 0.0), 1.0)`` clamping idiom that every
probability-returning function must apply (see ``docs/DEVELOPMENT.md``,
"Numerical conventions"): nested integration and sampling legitimately
produce values like ``1.0000000000000002``, and letting those escape
corrupts downstream comparisons and aggregates. The ``PRB001`` lint
rule (:mod:`repro.lint`) recognizes these helpers as valid clamps.
"""

from __future__ import annotations

import math

__all__ = ["clamp_probability", "close_to", "wilson_half_width"]


def clamp_probability(value: float, tolerance: float = 1e-9) -> float:
    """Clamp ``value`` into ``[0, 1]``, rejecting genuine nonsense.

    Values inside ``[-tolerance, 1 + tolerance]`` are treated as
    round-off and clamped silently; anything further out (or NaN)
    raises ``ValueError`` — that is an estimator bug, not float noise.
    """
    if math.isnan(value):
        raise ValueError("probability is NaN")
    if value < -tolerance or value > 1.0 + tolerance:
        raise ValueError(
            f"value {value!r} is outside [0, 1] by more than the "
            f"tolerance {tolerance!r}; upstream computation is broken"
        )
    return min(max(float(value), 0.0), 1.0)


def wilson_half_width(estimate: float, n: int, z: float = 1.959963984540054) -> float:
    """Wilson-score confidence half-width for a binomial proportion.

    Used by budget-clipped Monte-Carlo estimators to report the
    uncertainty of a ``partial=True`` answer: for an observed proportion
    ``estimate`` over ``n`` completed samples, returns half the width of
    the Wilson score interval at confidence level ``z`` (default 95%).
    Unlike the normal approximation, the Wilson interval stays sane at
    the ``estimate ∈ {0, 1}`` boundaries and for small ``n``. Returns
    ``inf`` when ``n == 0`` — an estimate backed by no samples has
    unbounded uncertainty.
    """
    if n < 0:
        raise ValueError(f"sample count must be non-negative, got {n!r}")
    if n == 0:
        return math.inf
    p = min(max(float(estimate), 0.0), 1.0)
    z2 = z * z
    denom = 1.0 + z2 / n
    half = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return half


def close_to(a: float, b: float, tolerance: float = 1e-12) -> bool:
    """Tolerant float equality for the ``NUM001`` lint rule's rewrites.

    ``math.isclose`` with an absolute tolerance floor, so comparisons
    against ``0.0`` (where relative tolerance degenerates) behave.
    """
    return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)
