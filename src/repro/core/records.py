"""Records with uncertain scores and the deterministic tie-breaker.

A record couples an identifier, a :class:`~repro.core.distributions.
ScoreDistribution`, and an optional attribute payload (used by the
:mod:`repro.db` substrate to carry the original tuple).

The paper (§II-A) assumes a transitive, deterministic tie-breaker ``tau``
over records with identical deterministic scores; we realize ``tau`` by
comparing record identifiers, which is transitive by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from .distributions import PointScore, ScoreDistribution, UniformScore
from .errors import ModelError

__all__ = ["UncertainRecord", "tie_break", "certain", "uniform"]


@dataclass(frozen=True)
class UncertainRecord:
    """A database record whose score is a probability distribution.

    Parameters
    ----------
    record_id:
        Unique identifier; also the deterministic tie-breaker key.
    score:
        The score distribution ``f_i`` on ``[lo_i, up_i]``.
    payload:
        Optional mapping of original attribute values (informational).
    """

    record_id: str
    score: ScoreDistribution
    payload: Optional[Mapping[str, Any]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.record_id:
            raise ModelError("record_id must be a non-empty string")

    @property
    def lower(self) -> float:
        """Score interval lower bound ``lo_i``."""
        return self.score.lower

    @property
    def upper(self) -> float:
        """Score interval upper bound ``up_i``."""
        return self.score.upper

    @property
    def is_deterministic(self) -> bool:
        """Whether the record's score is certain."""
        return self.score.is_deterministic

    def __repr__(self) -> str:
        return (
            f"UncertainRecord({self.record_id!r}, "
            f"[{self.lower}, {self.upper}])"
        )


def tie_break(a: UncertainRecord, b: UncertainRecord) -> bool:
    """The paper's tie-breaker ``tau``: whether ``a`` ranks above ``b``.

    Only meaningful for records with identical deterministic scores; we
    order by record identifier, which is deterministic and transitive.
    """
    return a.record_id < b.record_id


def certain(record_id: str, score: float, **payload: Any) -> UncertainRecord:
    """Convenience constructor for a record with a deterministic score."""
    return UncertainRecord(record_id, PointScore(score), payload or None)


def uniform(
    record_id: str, lower: float, upper: float, **payload: Any
) -> UncertainRecord:
    """Convenience constructor for a record with a uniform score interval.

    A zero-width interval degrades gracefully to a deterministic score.
    """
    if lower == upper:
        return certain(record_id, lower, **payload)
    return UncertainRecord(record_id, UniformScore(lower, upper), payload or None)
