"""Linear extensions of a probabilistic partial order.

The space of possible rankings of a PPO is the set of its linear
extensions — the topological sorts of the dominance DAG (paper §II-A).
This module provides:

- :func:`build_tree` — the paper's Algorithm 1, materializing the linear-
  extension tree (each root-to-leaf path is one extension); optionally
  truncated at depth ``k`` to obtain the prefix tree of §V.
- :func:`enumerate_extensions` / :func:`enumerate_prefixes` — lazy
  generators over the same spaces, for callers that must not materialize.
- :func:`count_linear_extensions` / :func:`count_prefix_nodes` — exact
  counting with downset memoization (counting is #P-complete in general
  [Brightwell & Winkler], so both enforce an explicit work cap).
- :func:`random_linear_extension` — draw a ranking by sampling one score
  per record and sorting, which by Theorem 1 yields a valid extension
  distributed according to the PPO's probability space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .budget import Budget
from .errors import EvaluationError
from .ppo import ProbabilisticPartialOrder, dominates
from .records import UncertainRecord

__all__ = [
    "ExtensionTreeNode",
    "build_tree",
    "enumerate_extensions",
    "enumerate_prefixes",
    "count_linear_extensions",
    "count_prefix_nodes",
    "random_linear_extension",
]


@dataclass
class ExtensionTreeNode:
    """One node of the linear-extension tree (paper Fig. 4).

    The root is a dummy node with ``record is None``; every other node
    represents an occurrence of a record at the node's depth, and each
    root-to-leaf path spells out one linear extension (or prefix).
    """

    record: Optional[UncertainRecord]
    depth: int
    children: List["ExtensionTreeNode"] = field(default_factory=list)
    #: Probability annotation filled in by the BASELINE algorithm.
    probability: Optional[float] = None

    def walk(self) -> Iterator["ExtensionTreeNode"]:
        """Depth-first traversal including this node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def node_count(self) -> int:
        """Number of non-root nodes in this subtree."""
        count = 0 if self.record is None else 1
        return count + sum(c.node_count() for c in self.children)

    def paths(self) -> Iterator[Tuple[UncertainRecord, ...]]:
        """All root-to-leaf record sequences below this node."""
        prefix: List[UncertainRecord] = []

        def _recurse(node: "ExtensionTreeNode") -> Iterator[Tuple[UncertainRecord, ...]]:
            if node.record is not None:
                prefix.append(node.record)
            if not node.children:
                yield tuple(prefix)
            else:
                for child in node.children:
                    yield from _recurse(child)
            if node.record is not None:
                prefix.pop()

        return _recurse(self)


class _DominanceAdjacency:
    """Precomputed dominance adjacency for fast source maintenance.

    ``dominated[i]`` lists indices directly or transitively dominated by
    ``i`` under the full dominance relation; in-degree bookkeeping over it
    makes each enumeration step linear in the out-degree of the removed
    record.
    """

    def __init__(self, records: Sequence[UncertainRecord]) -> None:
        self.records = list(records)
        n = len(self.records)
        self.dominated: List[List[int]] = [[] for _ in range(n)]
        self.indegree = [0] * n
        for i in range(n):
            for j in range(n):
                if i != j and dominates(self.records[i], self.records[j]):
                    self.dominated[i].append(j)
                    self.indegree[j] += 1


def _source_order_key(rec: UncertainRecord):
    """Deterministic ordering of sources (stable output across runs)."""
    return (-rec.upper, -rec.lower, rec.record_id)


def build_tree(
    ppo: ProbabilisticPartialOrder,
    depth: Optional[int] = None,
    max_nodes: int = 2_000_000,
    budget: Optional[Budget] = None,
) -> ExtensionTreeNode:
    """Materialize the linear-extension tree (paper Algorithm 1).

    Parameters
    ----------
    ppo:
        The partial order to expand.
    depth:
        Truncation depth ``k``; ``None`` expands complete extensions.
    max_nodes:
        Safety cap on materialized nodes; the space grows exponentially
        (``sum_i m! / (m - i)!`` for an antichain of ``m`` records), so
        exceeding the cap raises :class:`EvaluationError`.
    budget:
        Optional resource budget; each materialized node consumes one
        enumeration credit, and exhaustion (or deadline/cancellation)
        raises :class:`EvaluationError`. A partially built tree would
        silently misrepresent the extension space, so — unlike the lazy
        generators — materialization fails loudly and lets the caller
        degrade to a sampling-based evaluator.
    """
    adjacency = _DominanceAdjacency(ppo.records)
    limit = len(ppo.records) if depth is None else min(depth, len(ppo.records))
    root = ExtensionTreeNode(record=None, depth=0)
    produced = 0

    def _expand(node: ExtensionTreeNode, indegree: List[int], used: List[bool]) -> None:
        nonlocal produced
        if node.depth >= limit:
            return
        sources = [
            i
            for i in range(len(adjacency.records))
            if not used[i] and indegree[i] == 0
        ]
        sources.sort(key=lambda i: _source_order_key(adjacency.records[i]))
        for i in sources:
            produced += 1
            if produced > max_nodes:
                raise EvaluationError(
                    f"linear-extension tree exceeds {max_nodes} nodes; "
                    "use the sampling-based evaluators instead"
                )
            if budget is not None and not budget.consume_enumeration():
                raise EvaluationError(
                    f"enumeration budget exhausted after {produced - 1} "
                    f"tree nodes ({budget.exhausted_reason()})"
                )
            child = ExtensionTreeNode(
                record=adjacency.records[i], depth=node.depth + 1
            )
            node.children.append(child)
            used[i] = True
            for j in adjacency.dominated[i]:
                indegree[j] -= 1
            _expand(child, indegree, used)
            for j in adjacency.dominated[i]:
                indegree[j] += 1
            used[i] = False

    _expand(root, list(adjacency.indegree), [False] * len(ppo.records))
    return root


def _enumerate(
    ppo: ProbabilisticPartialOrder,
    depth: int,
    limit: Optional[int],
    budget: Optional[Budget] = None,
) -> Iterator[Tuple[UncertainRecord, ...]]:
    adjacency = _DominanceAdjacency(ppo.records)
    n = len(adjacency.records)
    indegree = list(adjacency.indegree)
    used = [False] * n
    prefix: List[UncertainRecord] = []
    yielded = 0
    stopped = False

    def _recurse() -> Iterator[Tuple[UncertainRecord, ...]]:
        nonlocal yielded, stopped
        if len(prefix) == depth:
            # A denied enumeration credit ends the generator early; the
            # caller distinguishes clipped from complete enumeration via
            # ``budget.exhausted_reason()`` (lazy iteration has no other
            # channel for a best-so-far signal).
            if budget is not None and not budget.consume_enumeration():
                stopped = True
                return
            yielded += 1
            yield tuple(prefix)
            return
        sources = [i for i in range(n) if not used[i] and indegree[i] == 0]
        sources.sort(key=lambda i: _source_order_key(adjacency.records[i]))
        for i in sources:
            if stopped or (limit is not None and yielded >= limit):
                return
            used[i] = True
            prefix.append(adjacency.records[i])
            for j in adjacency.dominated[i]:
                indegree[j] -= 1
            yield from _recurse()
            for j in adjacency.dominated[i]:
                indegree[j] += 1
            prefix.pop()
            used[i] = False

    return _recurse()


def enumerate_extensions(
    ppo: ProbabilisticPartialOrder,
    limit: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Iterator[Tuple[UncertainRecord, ...]]:
    """Lazily enumerate complete linear extensions.

    ``limit`` stops the generator after that many extensions; the space
    is exponential, so unbounded enumeration is only sensible for small
    inputs. A ``budget`` charges one enumeration credit per extension
    and ends the generator early when exhausted (check
    ``budget.exhausted_reason()`` to tell a clipped run from a complete
    one).
    """
    return _enumerate(ppo, len(ppo.records), limit, budget=budget)


def enumerate_prefixes(
    ppo: ProbabilisticPartialOrder,
    k: int,
    limit: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Iterator[Tuple[UncertainRecord, ...]]:
    """Lazily enumerate distinct k-length linear-extension prefixes.

    ``budget`` semantics match :func:`enumerate_extensions`: one credit
    per yielded prefix, early exit when the budget runs dry.
    """
    k = min(k, len(ppo.records))
    return _enumerate(ppo, k, limit, budget=budget)


def count_linear_extensions(
    ppo: ProbabilisticPartialOrder, max_states: int = 1_000_000
) -> int:
    """Exact number of linear extensions, via downset memoization.

    The memo key is the frozenset of remaining records, so distinct
    orders reaching the same remainder are counted once. ``max_states``
    caps the number of memo entries (counting is #P-complete).
    """
    adjacency = _DominanceAdjacency(ppo.records)
    n = len(adjacency.records)
    memo: Dict[FrozenSet[int], int] = {}

    def _count(remaining: FrozenSet[int], indegree: List[int]) -> int:
        if not remaining:
            return 1
        cached = memo.get(remaining)
        if cached is not None:
            return cached
        if len(memo) >= max_states:
            raise EvaluationError(
                f"linear-extension count exceeds {max_states} memo states"
            )
        total = 0
        for i in list(remaining):
            if indegree[i] != 0:
                continue
            for j in adjacency.dominated[i]:
                indegree[j] -= 1
            total += _count(remaining - {i}, indegree)
            for j in adjacency.dominated[i]:
                indegree[j] += 1
        memo[remaining] = total
        return total

    return _count(frozenset(range(n)), list(adjacency.indegree))


def count_prefix_nodes(
    ppo: ProbabilisticPartialOrder, depth: int, max_states: int = 1_000_000
) -> int:
    """Number of nodes in the depth-``k`` prefix tree (paper §V).

    This is the "space size" axis of the paper's Figures 9 and 10. Uses
    the same downset memoization as :func:`count_linear_extensions`.
    """
    adjacency = _DominanceAdjacency(ppo.records)
    n = len(adjacency.records)
    depth = min(depth, n)
    memo: Dict[Tuple[FrozenSet[int], int], int] = {}

    def _count(remaining: FrozenSet[int], left: int, indegree: List[int]) -> int:
        if left == 0:
            return 0
        key = (remaining, left)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(memo) >= max_states:
            raise EvaluationError(
                f"prefix-tree size exceeds {max_states} memo states"
            )
        total = 0
        for i in list(remaining):
            if indegree[i] != 0:
                continue
            for j in adjacency.dominated[i]:
                indegree[j] -= 1
            total += 1 + _count(remaining - {i}, left - 1, indegree)
            for j in adjacency.dominated[i]:
                indegree[j] += 1
        memo[key] = total
        return total

    return _count(frozenset(range(n)), depth, list(adjacency.indegree))


def count_prefixes(
    ppo: ProbabilisticPartialOrder, depth: int, max_states: int = 1_000_000
) -> int:
    """Number of distinct depth-``k`` prefixes (leaves of the prefix tree)."""
    adjacency = _DominanceAdjacency(ppo.records)
    n = len(adjacency.records)
    depth = min(depth, n)
    memo: Dict[Tuple[FrozenSet[int], int], int] = {}

    def _count(remaining: FrozenSet[int], left: int, indegree: List[int]) -> int:
        if left == 0:
            return 1
        key = (remaining, left)
        cached = memo.get(key)
        if cached is not None:
            return cached
        if len(memo) >= max_states:
            raise EvaluationError(
                f"prefix count exceeds {max_states} memo states"
            )
        total = 0
        for i in list(remaining):
            if indegree[i] != 0:
                continue
            for j in adjacency.dominated[i]:
                indegree[j] -= 1
            total += _count(remaining - {i}, left - 1, indegree)
            for j in adjacency.dominated[i]:
                indegree[j] += 1
        memo[key] = total
        return total

    return _count(frozenset(range(n)), depth, list(adjacency.indegree))


def random_linear_extension(
    ppo: ProbabilisticPartialOrder, rng: np.random.Generator
) -> Tuple[UncertainRecord, ...]:
    """Draw one linear extension from the PPO's probability space.

    Samples a concrete score per record and sorts descending; by
    Theorem 1 the resulting ranking is a valid linear extension and the
    draw follows the distribution defined by Eq. 4. Deterministic score
    ties are resolved with the tie-breaker.
    """
    records = ppo.records
    scores = np.array([rec.score.sample(rng) for rec in records], dtype=float)
    order = sorted(
        range(len(records)),
        key=lambda i: (-scores[i], records[i].record_id),
    )
    return tuple(records[i] for i in order)


def is_linear_extension(
    ppo: ProbabilisticPartialOrder, ranking: Sequence[UncertainRecord]
) -> bool:
    """Whether ``ranking`` respects every dominance constraint of ``ppo``."""
    if len(ranking) != len(ppo.records):
        return False
    position = {rec.record_id: i for i, rec in enumerate(ranking)}
    if len(position) != len(ppo.records):
        return False
    for a in ppo.records:
        if a.record_id not in position:
            return False
    for a in ppo.records:
        for b in ppo.records:
            if a is not b and dominates(a, b):
                if position[a.record_id] > position[b.record_id]:
                    return False
    return True
