"""Typed query and answer objects for the ranking query families.

The paper defines three query classes (§II-B):

- RECORD-RANK queries — :class:`UTopRankQuery` (Def. 4);
- TOP-k queries — :class:`UTopPrefixQuery` (Def. 5) and
  :class:`UTopSetQuery` (Def. 6), including their ``l``-answer variants;
- RANK-AGGREGATION queries — :class:`RankAggQuery` (Def. 7).

Answers carry their probability (or expected distance) plus evaluation
metadata: which method produced them, how long evaluation took, how much
of the database survived k-dominance pruning, and — for MCMC answers —
the paper's probability-upper-bound error estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Tuple

from .errors import QueryError

__all__ = [
    "UTopRankQuery",
    "UTopPrefixQuery",
    "UTopSetQuery",
    "RankAggQuery",
    "RecordAnswer",
    "PrefixAnswer",
    "SetAnswer",
    "RankAggAnswer",
    "DegradationEvent",
    "QueryResult",
]


@dataclass(frozen=True)
class DegradationEvent:
    """One rung of the degradation ladder the engine stepped down.

    Recorded on :attr:`QueryResult.degradation` whenever ``method="auto"``
    abandons or clips an evaluation stage under a resource budget or a
    fault, so callers can see exactly what was sacrificed for the answer
    they got.

    Attributes
    ----------
    stage:
        The evaluation stage involved (``"exact"``, ``"montecarlo"``,
        ``"mcmc"``, ``"baseline"``).
    action:
        What happened: ``"skipped"`` (never started), ``"failed"``
        (raised and was abandoned), ``"clipped"`` (returned a partial
        best-so-far result), or ``"fallback"`` (a lower-fidelity stage
        supplied the answer).
    reason:
        Human-readable cause (budget exhaustion label, exception text).
    """

    stage: str
    action: str
    reason: str


@dataclass(frozen=True)
class UTopRankQuery:
    """UTop-Rank(i, j): most probable record(s) at a rank in ``[i, j]``."""

    i: int
    j: int
    l: int = 1

    def __post_init__(self) -> None:
        if self.i < 1 or self.j < self.i:
            raise QueryError(f"invalid rank range [{self.i}, {self.j}]")
        if self.l < 1:
            raise QueryError("l must be positive")


@dataclass(frozen=True)
class UTopPrefixQuery:
    """UTop-Prefix(k): most probable k-length linear-extension prefix(es)."""

    k: int
    l: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("k must be positive")
        if self.l < 1:
            raise QueryError("l must be positive")


@dataclass(frozen=True)
class UTopSetQuery:
    """UTop-Set(k): most probable top-k record set(s)."""

    k: int
    l: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("k must be positive")
        if self.l < 1:
            raise QueryError("l must be positive")


@dataclass(frozen=True)
class RankAggQuery:
    """Rank-Agg: footrule-optimal consensus over linear extensions."""

    distance: str = "footrule"

    def __post_init__(self) -> None:
        if self.distance != "footrule":
            raise QueryError(
                "only the footrule distance admits the polynomial "
                f"aggregation algorithm (got {self.distance!r})"
            )


@dataclass(frozen=True)
class RecordAnswer:
    """One UTop-Rank answer: a record and its rank-range probability."""

    record_id: str
    probability: float


@dataclass(frozen=True)
class PrefixAnswer:
    """One UTop-Prefix answer: an ordered prefix and its probability."""

    prefix: Tuple[str, ...]
    probability: float


@dataclass(frozen=True)
class SetAnswer:
    """One UTop-Set answer: an unordered top-k set and its probability."""

    members: FrozenSet[str]
    probability: float


@dataclass(frozen=True)
class RankAggAnswer:
    """A Rank-Agg answer: the consensus ranking and its expected distance."""

    ranking: Tuple[str, ...]
    expected_distance: float


@dataclass
class QueryResult:
    """Evaluation outcome: answers plus execution metadata.

    Attributes
    ----------
    answers:
        Ranked best-first; element type depends on the query family.
    method:
        ``"exact"``, ``"montecarlo"``, ``"mcmc"``, or ``"baseline"``.
    elapsed:
        Wall-clock evaluation time in seconds.
    database_size / pruned_size:
        Record counts before and after k-dominance pruning.
    error_bound:
        For approximate TOP-k answers: the §VI-D upper-bound gap, when
        available.
    diagnostics:
        Free-form extras (e.g. MCMC convergence traces).
    partial:
        ``True`` when a resource budget clipped evaluation and the
        answers are best-so-far rather than fully evaluated.
    truncated:
        ``True`` when an enumeration cap clipped the UTop-Prefix /
        UTop-Set candidate space, so a better answer may exist outside
        the enumerated region.
    confidence_half_width:
        For partial Monte-Carlo answers: the Wilson-score 95% half-width
        of the top answer's probability given the samples completed.
    degradation:
        Structured :class:`DegradationEvent` log of every ladder step
        taken under ``method="auto"`` (empty for clean evaluations).
    cache:
        Computation-cache increments attributed to this query (hits,
        misses, top-up extensions), when the engine ran with a cache.
    """

    answers: List
    method: str
    elapsed: float
    database_size: int
    pruned_size: int
    error_bound: Optional[float] = None
    diagnostics: dict = field(default_factory=dict)
    partial: bool = False
    truncated: bool = False
    confidence_half_width: Optional[float] = None
    degradation: List[DegradationEvent] = field(default_factory=list)
    cache: Optional[dict] = None

    @property
    def top(self) -> Any:
        """The single best answer (or ``None`` when empty).

        The concrete type follows the query family:
        :class:`RecordAnswer`, :class:`PrefixAnswer`, :class:`SetAnswer`,
        or :class:`RankAggAnswer`.
        """
        return self.answers[0] if self.answers else None

    def to_dict(self) -> dict:
        """JSON-serializable rendition of the result.

        Answer objects become plain dicts (frozensets become sorted
        lists) so the result can be returned from a web service or
        logged verbatim.
        """

        def encode(answer):
            if isinstance(answer, RecordAnswer):
                return {
                    "record_id": answer.record_id,
                    "probability": answer.probability,
                }
            if isinstance(answer, PrefixAnswer):
                return {
                    "prefix": list(answer.prefix),
                    "probability": answer.probability,
                }
            if isinstance(answer, SetAnswer):
                return {
                    "members": sorted(answer.members),
                    "probability": answer.probability,
                }
            if isinstance(answer, RankAggAnswer):
                return {
                    "ranking": list(answer.ranking),
                    "expected_distance": answer.expected_distance,
                }
            return answer  # pragma: no cover - future answer kinds

        return {
            "answers": [encode(a) for a in self.answers],
            "method": self.method,
            "elapsed": self.elapsed,
            "database_size": self.database_size,
            "pruned_size": self.pruned_size,
            "error_bound": self.error_bound,
            "diagnostics": dict(self.diagnostics),
            "partial": self.partial,
            "truncated": self.truncated,
            "confidence_half_width": self.confidence_half_width,
            "degradation": [
                {"stage": e.stage, "action": e.action, "reason": e.reason}
                for e in self.degradation
            ],
            "cache": None if self.cache is None else dict(self.cache),
        }
