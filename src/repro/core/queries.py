"""Typed query and answer objects for the ranking query families.

The paper defines three query classes (§II-B):

- RECORD-RANK queries — :class:`UTopRankQuery` (Def. 4);
- TOP-k queries — :class:`UTopPrefixQuery` (Def. 5) and
  :class:`UTopSetQuery` (Def. 6), including their ``l``-answer variants;
- RANK-AGGREGATION queries — :class:`RankAggQuery` (Def. 7).

Answers carry their probability (or expected distance) plus evaluation
metadata: which method produced them, how long evaluation took, how much
of the database survived k-dominance pruning, and — for MCMC answers —
the paper's probability-upper-bound error estimate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, FrozenSet, List, Optional, Tuple

from .errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .budget import Budget
    from .trace import Span

__all__ = [
    "Query",
    "UTopRankQuery",
    "UTopPrefixQuery",
    "UTopSetQuery",
    "RankAggQuery",
    "RecordAnswer",
    "PrefixAnswer",
    "SetAnswer",
    "RankAggAnswer",
    "DegradationEvent",
    "QueryResult",
]

#: Query kinds the engine's ``query()`` dispatcher accepts.
QUERY_KINDS = (
    "utop_rank",
    "utop_prefix",
    "utop_set",
    "rank_aggregation",
    "threshold_topk",
)


@dataclass(frozen=True)
class Query:
    """One fully specified ranking query, ready for ``RankingEngine.query``.

    The unified spec behind every query family: the thin wrapper methods
    (``utop_rank`` and friends) only build one of these, so tracing,
    metrics, cache-delta, and degradation bookkeeping live in exactly
    one dispatcher.

    Attributes
    ----------
    kind:
        One of :data:`QUERY_KINDS`.
    i / j:
        Rank bounds for ``"utop_rank"`` (unused elsewhere).
    k:
        Dominance level for ``"utop_prefix"`` / ``"utop_set"`` /
        ``"threshold_topk"``.
    l:
        Number of answers requested (best-first).
    threshold:
        Probability cut-off for ``"threshold_topk"``.
    method:
        Evaluation method (``"auto"``, ``"exact"``, ``"montecarlo"``,
        ``"mcmc"``, ``"baseline"`` — availability depends on the kind).
    samples:
        Monte-Carlo sample override (``None``: the engine default).
    budget:
        Per-query resource budget (``None``: the engine default).
    seed:
        Per-query stream seed. ``None`` (the default) uses the engine's
        stable per-constructor streams; an integer derives dedicated
        sampling/MCMC streams from it, so two engines built with
        *different* constructor seeds still agree on a query carrying
        the same ``seed``.
    trace:
        Per-query tracing override: ``None`` follows the engine's
        ``trace=`` knob; ``True``/``False`` force it for this query.
    backend:
        Per-query execution-backend override (``"thread"``,
        ``"process"``, or ``"auto"``); ``None`` follows the engine's
        ``backend=`` knob. Results are bit-identical across backends —
        the knob only changes where the sampling work runs.
    """

    kind: str
    i: Optional[int] = None
    j: Optional[int] = None
    k: Optional[int] = None
    l: int = 1
    threshold: Optional[float] = None
    method: str = "auto"
    samples: Optional[int] = None
    budget: Optional["Budget"] = None
    seed: Optional[int] = None
    trace: Optional[bool] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise QueryError(f"unknown query kind {self.kind!r}")
        if self.backend is not None and self.backend not in (
            "thread",
            "process",
            "auto",
        ):
            raise QueryError(f"unknown execution backend {self.backend!r}")
        if self.l < 1:
            raise QueryError("l must be positive")
        if self.kind == "utop_rank":
            if self.i is None or self.j is None:
                raise QueryError("utop_rank requires rank bounds i and j")
            if self.i < 1 or self.j < self.i:
                raise QueryError(
                    f"invalid rank range [{self.i}, {self.j}]"
                )
        elif self.kind in ("utop_prefix", "utop_set", "threshold_topk"):
            if self.k is None or self.k < 1:
                raise QueryError("k must be positive")
            if self.kind == "threshold_topk":
                if self.threshold is None or not 0.0 < self.threshold <= 1.0:
                    raise QueryError("threshold must be in (0, 1]")
        if self.samples is not None and self.samples < 1:
            raise QueryError("samples must be positive")


@dataclass(frozen=True)
class DegradationEvent:
    """One rung of the degradation ladder the engine stepped down.

    Recorded on :attr:`QueryResult.degradation` whenever ``method="auto"``
    abandons or clips an evaluation stage under a resource budget or a
    fault, so callers can see exactly what was sacrificed for the answer
    they got.

    Attributes
    ----------
    stage:
        The evaluation stage involved (``"exact"``, ``"montecarlo"``,
        ``"mcmc"``, ``"baseline"``).
    action:
        What happened: ``"skipped"`` (never started), ``"failed"``
        (raised and was abandoned), ``"clipped"`` (returned a partial
        best-so-far result), or ``"fallback"`` (a lower-fidelity stage
        supplied the answer).
    reason:
        Human-readable cause (budget exhaustion label, exception text).
    """

    stage: str
    action: str
    reason: str


@dataclass(frozen=True)
class UTopRankQuery:
    """UTop-Rank(i, j): most probable record(s) at a rank in ``[i, j]``."""

    i: int
    j: int
    l: int = 1

    def __post_init__(self) -> None:
        if self.i < 1 or self.j < self.i:
            raise QueryError(f"invalid rank range [{self.i}, {self.j}]")
        if self.l < 1:
            raise QueryError("l must be positive")


@dataclass(frozen=True)
class UTopPrefixQuery:
    """UTop-Prefix(k): most probable k-length linear-extension prefix(es)."""

    k: int
    l: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("k must be positive")
        if self.l < 1:
            raise QueryError("l must be positive")


@dataclass(frozen=True)
class UTopSetQuery:
    """UTop-Set(k): most probable top-k record set(s)."""

    k: int
    l: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("k must be positive")
        if self.l < 1:
            raise QueryError("l must be positive")


@dataclass(frozen=True)
class RankAggQuery:
    """Rank-Agg: footrule-optimal consensus over linear extensions."""

    distance: str = "footrule"

    def __post_init__(self) -> None:
        if self.distance != "footrule":
            raise QueryError(
                "only the footrule distance admits the polynomial "
                f"aggregation algorithm (got {self.distance!r})"
            )


@dataclass(frozen=True)
class RecordAnswer:
    """One UTop-Rank answer: a record and its rank-range probability."""

    record_id: str
    probability: float


@dataclass(frozen=True)
class PrefixAnswer:
    """One UTop-Prefix answer: an ordered prefix and its probability."""

    prefix: Tuple[str, ...]
    probability: float


@dataclass(frozen=True)
class SetAnswer:
    """One UTop-Set answer: an unordered top-k set and its probability."""

    members: FrozenSet[str]
    probability: float


@dataclass(frozen=True)
class RankAggAnswer:
    """A Rank-Agg answer: the consensus ranking and its expected distance."""

    ranking: Tuple[str, ...]
    expected_distance: float


#: QueryResult fields in (legacy) positional order; the first five are
#: required, the rest default.
_RESULT_FIELDS = (
    "answers",
    "method",
    "elapsed",
    "database_size",
    "pruned_size",
    "error_bound",
    "diagnostics",
    "partial",
    "truncated",
    "confidence_half_width",
    "degradation",
    "cache",
    "trace",
)

_RESULT_REQUIRED = _RESULT_FIELDS[:5]

#: Scalar defaults; ``diagnostics`` / ``degradation`` get fresh
#: containers per instance instead.
_RESULT_DEFAULTS: dict = {
    "error_bound": None,
    "partial": False,
    "truncated": False,
    "confidence_half_width": None,
    "cache": None,
    "trace": None,
}


def _json_default(value: Any) -> Any:
    """Fallback encoder for numpy scalars and other odd leaves."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


@dataclass(init=False)
class QueryResult:
    """Evaluation outcome: answers plus execution metadata.

    Construct by keyword only; positional construction raises
    :class:`TypeError` (it was deprecated through one release cycle)
    because the boolean/optional tail of the field list makes
    positional call sites unreadable.

    Attributes
    ----------
    answers:
        Ranked best-first; element type depends on the query family.
    method:
        ``"exact"``, ``"montecarlo"``, ``"mcmc"``, or ``"baseline"``.
    elapsed:
        Wall-clock evaluation time in seconds.
    database_size / pruned_size:
        Record counts before and after k-dominance pruning.
    error_bound:
        For approximate TOP-k answers: the §VI-D upper-bound gap, when
        available.
    diagnostics:
        Free-form extras (e.g. MCMC convergence traces).
    partial:
        ``True`` when a resource budget clipped evaluation and the
        answers are best-so-far rather than fully evaluated.
    truncated:
        ``True`` when an enumeration cap clipped the UTop-Prefix /
        UTop-Set candidate space, so a better answer may exist outside
        the enumerated region.
    confidence_half_width:
        For partial Monte-Carlo answers: the Wilson-score 95% half-width
        of the top answer's probability given the samples completed.
    degradation:
        Structured :class:`DegradationEvent` log of every ladder step
        taken under ``method="auto"`` (empty for clean evaluations).
    cache:
        Computation-cache increments attributed to this query (hits,
        misses, top-up extensions), when the engine ran with a cache.
    trace:
        Root :class:`~repro.core.trace.Span` of the query, when the
        engine ran with tracing enabled (``None`` otherwise). Export
        with ``trace.to_dict()`` or :meth:`to_dict`.
    """

    answers: List
    method: str
    elapsed: float
    database_size: int
    pruned_size: int
    error_bound: Optional[float]
    diagnostics: dict
    partial: bool
    truncated: bool
    confidence_half_width: Optional[float]
    degradation: List[DegradationEvent]
    cache: Optional[dict]
    trace: Optional["Span"]

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        if args:
            raise TypeError(
                "QueryResult takes no positional arguments; pass "
                "every field by keyword"
            )
        unknown = sorted(set(kwargs) - set(_RESULT_FIELDS))
        if unknown:
            raise TypeError(
                f"QueryResult got unexpected arguments: {unknown}"
            )
        missing = [name for name in _RESULT_REQUIRED if name not in kwargs]
        if missing:
            raise TypeError(
                f"QueryResult missing required arguments: {missing}"
            )
        for name in _RESULT_FIELDS:
            if name in kwargs:
                value = kwargs[name]
            elif name == "diagnostics":
                value = {}
            elif name == "degradation":
                value = []
            else:
                value = _RESULT_DEFAULTS[name]
            setattr(self, name, value)

    @property
    def top(self) -> Any:
        """The single best answer (or ``None`` when empty).

        The concrete type follows the query family:
        :class:`RecordAnswer`, :class:`PrefixAnswer`, :class:`SetAnswer`,
        or :class:`RankAggAnswer`.
        """
        return self.answers[0] if self.answers else None

    def to_dict(self) -> dict:
        """JSON-serializable rendition of the result.

        Answer objects become plain dicts (frozensets become sorted
        lists) so the result can be returned from a web service or
        logged verbatim.
        """

        def encode(answer):
            if isinstance(answer, RecordAnswer):
                return {
                    "record_id": answer.record_id,
                    "probability": answer.probability,
                }
            if isinstance(answer, PrefixAnswer):
                return {
                    "prefix": list(answer.prefix),
                    "probability": answer.probability,
                }
            if isinstance(answer, SetAnswer):
                return {
                    "members": sorted(answer.members),
                    "probability": answer.probability,
                }
            if isinstance(answer, RankAggAnswer):
                return {
                    "ranking": list(answer.ranking),
                    "expected_distance": answer.expected_distance,
                }
            return answer  # pragma: no cover - future answer kinds

        return {
            "answers": [encode(a) for a in self.answers],
            "method": self.method,
            "elapsed": self.elapsed,
            "database_size": self.database_size,
            "pruned_size": self.pruned_size,
            "error_bound": self.error_bound,
            "diagnostics": dict(self.diagnostics),
            "partial": self.partial,
            "truncated": self.truncated,
            "confidence_half_width": self.confidence_half_width,
            "degradation": [
                {"stage": e.stage, "action": e.action, "reason": e.reason}
                for e in self.degradation
            ],
            "cache": None if self.cache is None else dict(self.cache),
            "trace": None if self.trace is None else self.trace.to_dict(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The :meth:`to_dict` rendition serialized to a JSON string.

        Numpy scalars (which reach diagnostics and probabilities from
        the estimators) are coerced to floats; anything else
        unserializable falls back to ``str``.
        """
        return json.dumps(
            self.to_dict(), indent=indent, default=_json_default
        )
