"""Cooperative resource budgets for query evaluation.

The paper's evaluation algorithms trade accuracy for time (exact
enumeration vs. Monte-Carlo vs. MCMC, Figures 9-13), but a production
engine must also bound *resources*: wall-clock time, total samples
drawn, and enumeration work. This module provides the primitives the
engine and estimators cooperate through:

- :class:`CancellationToken` — a thread-safe flag a caller flips to
  abort work early; estimators poll it at chunk boundaries.
- :class:`Budget` — a wall-clock deadline plus sample and enumeration
  caps. Estimators never *race* on the sample cap: the engine grants
  samples up front with :meth:`Budget.take_samples` (an atomic
  reservation), so the number of samples actually drawn is a pure
  function of the budget state at call time — never of thread
  scheduling. Deadlines and cancellation are checked best-effort at
  chunk/epoch boundaries and are inherently scheduling-dependent;
  callers that need bit-identical reruns should rely on the sample and
  enumeration caps (see docs/DEVELOPMENT.md, "Robustness
  architecture").
- :class:`SampleCounts` — a best-so-far partial estimator result: the
  rank-count matrix accumulated before the budget ran out, how many
  samples backed it, and why accumulation stopped.

Budgets are *cooperative*: nothing is interrupted pre-emptively, so a
single long-running NumPy kernel call can overshoot a deadline by one
chunk. That is by design — chunk sizes in the estimators are bounded,
and pre-emption would sacrifice determinism.
"""

from __future__ import annotations

import struct
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from . import metrics, shm
from .trace import accumulate

__all__ = [
    "Budget",
    "CancellationToken",
    "SampleCounts",
    "WorkerBudget",
    "WorkerBudgetView",
]

#: Cross-process budget block: cancel flag (u8 + pad), samples granted
#: (u64, parent is the single writer so plain stores are atomic), sample
#: cap (u64, ``_UNCAPPED`` when none), absolute ``time.monotonic``
#: deadline (f64, NaN when none — CLOCK_MONOTONIC shares its epoch
#: across processes on Linux).
_BLOCK = struct.Struct("<B7xQQd")
_UNCAPPED = 2**64 - 1


class CancellationToken:
    """A thread-safe cooperative cancellation flag.

    The owner calls :meth:`cancel`; workers poll :attr:`cancelled` at
    chunk boundaries and wind down returning their best-so-far result.
    Tokens are one-shot: once cancelled they stay cancelled.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "active"
        return f"CancellationToken({state})"


class Budget:
    """A cooperative resource budget for one query (or query batch).

    Parameters
    ----------
    deadline:
        Wall-clock seconds from construction after which :meth:`expired`
        reports ``True``. ``None`` means no time limit.
    max_samples:
        Total Monte-Carlo samples this budget may grant across all
        :meth:`take_samples` calls. ``None`` means unlimited.
    max_enumeration:
        Total enumeration states (tree nodes, prefixes) this budget may
        grant across all :meth:`consume_enumeration` calls. ``None``
        means unlimited.
    token:
        Optional external :class:`CancellationToken`; a fresh private
        token is created when omitted.
    clock:
        Monotonic-clock callable, injectable for deterministic tests.

    All mutating methods are thread-safe. Sample grants are *atomic
    reservations*: concurrent shards never consume from the cap
    directly, so the granted total is scheduling-independent.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        max_samples: Optional[int] = None,
        max_enumeration: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError(f"deadline must be non-negative, got {deadline!r}")
        if max_samples is not None and max_samples < 0:
            raise ValueError(
                f"max_samples must be non-negative, got {max_samples!r}"
            )
        if max_enumeration is not None and max_enumeration < 0:
            raise ValueError(
                f"max_enumeration must be non-negative, got {max_enumeration!r}"
            )
        self.deadline = deadline
        self.max_samples = max_samples
        self.max_enumeration = max_enumeration
        self.token = token if token is not None else CancellationToken()
        self._clock = clock
        self._start = clock()
        self._lock = threading.Lock()
        self._samples_used = 0
        self._enumeration_used = 0
        self._shared: Optional[object] = None
        self._shared_finalizer: Optional[weakref.finalize] = None

    @classmethod
    def for_deadline(
        cls,
        seconds_remaining: float,
        max_samples: Optional[int] = None,
        max_enumeration: Optional[int] = None,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Budget":
        """A budget for a request that must answer within a deadline.

        Unlike the constructor, a negative ``seconds_remaining`` is not
        an error: the request arrived with its deadline already expired
        (slow network, long admission queue), so the budget is *born
        expired* — :meth:`expired` is immediately ``True``, every stage
        that needs time is skipped, and the degradation ladder collapses
        straight to the always-allowed baseline rung. The serving layer
        maps every request through this so an exhausted deadline yields
        a flagged partial answer, never an HTTP 504. Emits
        ``budget_admission_expired_total`` when the clamp fires.
        """
        remaining = float(seconds_remaining)
        if remaining <= 0.0:
            metrics.inc("budget_admission_expired_total")
            remaining = 0.0
        return cls(
            deadline=remaining,
            max_samples=max_samples,
            max_enumeration=max_enumeration,
            token=token,
            clock=clock,
        )

    # -- time ----------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return self._clock() - self._start

    def time_remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed()

    def expired(self) -> bool:
        """Whether work should stop *now* (cancelled or past deadline).

        Sample/enumeration exhaustion is *not* reported here — those
        caps are consumed through explicit grants and only stop the
        stages that need them.
        """
        if self.token.cancelled:
            return True
        remaining = self.time_remaining()
        return remaining is not None and remaining <= 0

    def exhausted_reason(self) -> Optional[str]:
        """Short label for why the budget is blocking, or ``None``.

        One of ``"cancelled"``, ``"deadline"``, ``"samples"``,
        ``"enumeration"`` — checked in that order.
        """
        if self.token.cancelled:
            return "cancelled"
        remaining = self.time_remaining()
        if remaining is not None and remaining <= 0:
            return "deadline"
        with self._lock:
            if (
                self.max_samples is not None
                and self._samples_used >= self.max_samples
            ):
                return "samples"
            if (
                self.max_enumeration is not None
                and self._enumeration_used >= self.max_enumeration
            ):
                return "enumeration"
        return None

    # -- samples -------------------------------------------------------

    @property
    def samples_used(self) -> int:
        """Samples granted so far."""
        with self._lock:
            return self._samples_used

    def samples_remaining(self) -> Optional[int]:
        """Samples still grantable (``None`` when uncapped)."""
        if self.max_samples is None:
            return None
        with self._lock:
            return max(0, self.max_samples - self._samples_used)

    def take_samples(self, requested: int) -> int:
        """Atomically reserve up to ``requested`` samples.

        Returns the granted count in ``[0, requested]`` — the full
        request when the cap allows it, the remainder when the cap is
        nearly drained, and ``0`` when it is empty, cancelled, or past
        deadline. The caller draws exactly the granted number.
        """
        if requested < 0:
            raise ValueError(f"requested must be non-negative, got {requested!r}")
        if self.expired():
            metrics.inc("budget_denials_total", 1.0, resource="samples")
            accumulate("budget_samples_denied", requested)
            return 0
        with self._lock:
            if self.max_samples is None:
                grant = requested
            else:
                grant = min(requested, max(0, self.max_samples - self._samples_used))
            self._samples_used += grant
        if grant > 0:
            metrics.inc(
                "budget_sample_grants_total", float(grant), resource="samples"
            )
            accumulate("budget_samples_granted", grant)
        if grant < requested:
            metrics.inc("budget_denials_total", 1.0, resource="samples")
        return grant

    # -- enumeration ---------------------------------------------------

    @property
    def enumeration_used(self) -> int:
        """Enumeration states granted so far."""
        with self._lock:
            return self._enumeration_used

    def enumeration_remaining(self) -> Optional[int]:
        """Enumeration states still grantable (``None`` when uncapped)."""
        if self.max_enumeration is None:
            return None
        with self._lock:
            return max(0, self.max_enumeration - self._enumeration_used)

    def consume_enumeration(self, count: int = 1) -> bool:
        """Consume ``count`` enumeration states; ``False`` when exhausted.

        Unlike :meth:`take_samples` this is all-or-nothing: enumeration
        loops advance one state at a time, so a partial grant has no
        meaning. A ``False`` return means the loop should stop and
        return its best-so-far answer with ``partial=True``.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count!r}")
        if self.expired():
            metrics.inc("budget_denials_total", 1.0, resource="enumeration")
            accumulate("budget_enumeration_denied")
            return False
        with self._lock:
            if (
                self.max_enumeration is not None
                and self._enumeration_used + count > self.max_enumeration
            ):
                granted = False
            else:
                self._enumeration_used += count
                granted = True
        if granted:
            accumulate("budget_enumeration_granted", count)
        else:
            metrics.inc("budget_denials_total", 1.0, resource="enumeration")
            accumulate("budget_enumeration_denied")
        return granted

    # -- cross-process view --------------------------------------------

    def worker_view(self) -> "WorkerBudgetView":
        """Picklable handle for budget checks in worker processes.

        Sample and enumeration *grants* always stay in the parent (they
        are atomic reservations made before work is dispatched); workers
        only need the read side — cancellation, deadline, and the
        granted-samples counter — which lives in a small shared-memory
        block. The parent is the block's single writer: the dispatcher
        calls :meth:`sync_shared` while it waits on futures, so a
        cancellation or a deadline crossing reaches workers at their
        next chunk boundary. The block is unlinked by :meth:`close`
        (with a GC finalizer as backstop).
        """
        with self._lock:
            if self._shared is None:
                segment = shm.create_segment(_BLOCK.size)
                self._shared = segment
                self._shared_finalizer = weakref.finalize(
                    self, shm.unlink_segment, segment
                )
        self.sync_shared()
        return WorkerBudgetView(self._shared.name)

    def sync_shared(self) -> None:
        """Publish cancel/deadline/samples state to the shared block."""
        with self._lock:
            segment = self._shared
            used = self._samples_used
        if segment is None:
            return
        remaining = self.time_remaining()
        target = (
            float("nan")
            if remaining is None
            else time.monotonic() + max(0.0, remaining)
        )
        cap = _UNCAPPED if self.max_samples is None else self.max_samples
        _BLOCK.pack_into(
            segment.buf, 0, int(self.token.cancelled), used, cap, target
        )

    def close(self) -> None:
        """Release the shared block, if any. Idempotent."""
        with self._lock:
            segment = self._shared
            self._shared = None
            if self._shared_finalizer is not None:
                self._shared_finalizer.detach()
                self._shared_finalizer = None
        shm.unlink_segment(segment)

    def __repr__(self) -> str:
        return (
            f"Budget(deadline={self.deadline!r}, "
            f"max_samples={self.max_samples!r}, "
            f"max_enumeration={self.max_enumeration!r}, "
            f"samples_used={self.samples_used}, "
            f"enumeration_used={self.enumeration_used})"
        )


@dataclass(frozen=True)
class WorkerBudgetView:
    """Name of a :class:`Budget`'s shared block; crosses process lines."""

    name: str


class WorkerBudget:
    """Read-only :class:`Budget` proxy used inside worker processes.

    Supports exactly the surface estimators poll at chunk boundaries —
    :meth:`expired` and :meth:`exhausted_reason`. Grants never happen
    worker-side, so the mutating :class:`Budget` API is deliberately
    absent.
    """

    def __init__(self, view: WorkerBudgetView) -> None:
        self._segment = shm.attach_segment(view.name)

    def _read(self) -> tuple:
        return _BLOCK.unpack_from(self._segment.buf, 0)

    def expired(self) -> bool:
        """Whether work should stop now (cancelled or past deadline)."""
        cancelled, _used, _cap, target = self._read()
        if cancelled:
            return True
        return target == target and time.monotonic() >= target

    def exhausted_reason(self) -> Optional[str]:
        """Mirror of :meth:`Budget.exhausted_reason` (no enumeration)."""
        cancelled, used, cap, target = self._read()
        if cancelled:
            return "cancelled"
        if target == target and time.monotonic() >= target:
            return "deadline"
        if cap != _UNCAPPED and used >= cap:
            return "samples"
        return None


@dataclass
class SampleCounts:
    """Best-so-far rank counts from a (possibly budget-clipped) run.

    Attributes
    ----------
    counts:
        ``(n, max_rank)`` integer matrix: ``counts[t, r]`` = number of
        completed samples in which record ``t`` landed at rank ``r``.
    done:
        Samples actually accumulated into ``counts``.
    requested:
        Samples the caller asked for; ``done < requested`` iff the run
        was clipped.
    reason:
        Why accumulation stopped early (``"cancelled"``, ``"deadline"``,
        ``"samples"``) or ``None`` for a complete run.
    """

    counts: np.ndarray
    done: int
    requested: int
    reason: Optional[str] = None

    @property
    def partial(self) -> bool:
        """Whether the run stopped before drawing every requested sample."""
        return self.done < self.requested

    def merge(self, other: "SampleCounts") -> "SampleCounts":
        """Combine shard results (counts and tallies add; reasons join)."""
        reason = self.reason if self.reason is not None else other.reason
        return SampleCounts(
            counts=self.counts + other.counts,
            done=self.done + other.done,
            requested=self.requested + other.requested,
            reason=reason,
        )
