"""The probabilistic partial order (PPO) induced by uncertain scores.

Implements Definitions 1-3 and 8 of the paper:

- **Record dominance** (Def. 2): ``t_i`` dominates ``t_j`` iff
  ``lo_i >= up_j``; ties between identical deterministic scores are
  oriented by the deterministic tie-breaker ``tau`` so the relation stays
  acyclic.
- **PPO** (Def. 3): the strict partial order ``(R, O)`` of dominance plus
  the probabilistic dominance relation ``P`` quantified by Eq. 1.
- **Rank intervals** (Def. 8): the range of possible ranks of each record
  across all linear extensions.

Dominator/dominated counts are computed with sorted-array binary searches
(vectorized over the whole database), so rank intervals and skylines cost
``O(n log n)`` rather than ``O(n^2)``.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .errors import ModelError
from .pairwise import PairwiseCache
from .records import UncertainRecord, tie_break

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    import networkx as nx

__all__ = ["dominates", "ProbabilisticPartialOrder"]


def dominates(a: UncertainRecord, b: UncertainRecord) -> bool:
    """Record dominance (paper Def. 2) with tie-breaking.

    ``a`` dominates ``b`` iff ``lo_a >= up_b``. When both scores are
    deterministic and equal, the tie-breaker ``tau`` orients the pair.
    """
    if a is b or a.record_id == b.record_id:
        return False
    if a.is_deterministic and b.is_deterministic and a.lower == b.lower:
        return tie_break(a, b)
    return a.lower >= b.upper


class ProbabilisticPartialOrder:
    """PPO over a set of uncertain records (paper Def. 3).

    Parameters
    ----------
    records:
        The database ``D``; record identifiers must be unique.
    cache:
        Optional shared :class:`~repro.core.pairwise.PairwiseCache` for
        the probabilistic dominance probabilities.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        cache: Optional[PairwiseCache] = None,
    ) -> None:
        records = list(records)
        seen = set()
        for rec in records:
            if rec.record_id in seen:
                raise ModelError(f"duplicate record id {rec.record_id!r}")
            seen.add(rec.record_id)
        self.records: List[UncertainRecord] = records
        self.cache = cache if cache is not None else PairwiseCache()
        self._index: Dict[str, int] = {
            rec.record_id: i for i, rec in enumerate(records)
        }
        self._lowers = np.array([r.lower for r in records], dtype=float)
        self._uppers = np.array([r.upper for r in records], dtype=float)
        self._sorted_lowers = np.sort(self._lowers)
        self._sorted_uppers = np.sort(self._uppers)
        self._det_groups = self._build_deterministic_groups()

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def record(self, record_id: str) -> UncertainRecord:
        """Look up a record by identifier."""
        return self.records[self._index[record_id]]

    def _build_deterministic_groups(self) -> Dict[float, List[int]]:
        """Group indices of deterministic records sharing a score value.

        Only groups of size >= 2 are retained; they are the only places
        where the tie-breaker affects dominance counts.
        """
        groups: Dict[float, List[int]] = {}
        for i, rec in enumerate(self.records):
            if rec.is_deterministic:
                groups.setdefault(rec.lower, []).append(i)
        return {
            value: sorted(idxs, key=lambda i: self.records[i].record_id)
            for value, idxs in groups.items()
            if len(idxs) >= 2
        }

    # ------------------------------------------------------------------
    # dominance structure
    # ------------------------------------------------------------------

    def dominator_count(self, rec: UncertainRecord) -> int:
        """``|D-bar(t)|``: number of records dominating ``rec``."""
        i = self._index[rec.record_id]
        n = len(self.records)
        # Records with lo >= up_i, then remove self-counting and correct
        # ties among identical deterministic scores.
        count = n - int(
            np.searchsorted(self._sorted_lowers, self._uppers[i], side="left")
        )
        if self._lowers[i] >= self._uppers[i]:
            count -= 1  # deterministic records must not count themselves
        if rec.is_deterministic and rec.lower in self._det_groups:
            group = self._det_groups[rec.lower]
            position = group.index(i)
            # All group members were counted as dominators via lo >= up;
            # only those preceding `rec` in tie-break order actually
            # dominate it.
            count -= (len(group) - 1) - position
        return count

    def dominated_count(self, rec: UncertainRecord) -> int:
        """``|D-underline(t)|``: number of records dominated by ``rec``."""
        i = self._index[rec.record_id]
        count = int(
            np.searchsorted(self._sorted_uppers, self._lowers[i], side="right")
        )
        if self._lowers[i] >= self._uppers[i]:
            count -= 1
        if rec.is_deterministic and rec.lower in self._det_groups:
            group = self._det_groups[rec.lower]
            position = group.index(i)
            count -= position
        return count

    def rank_interval(self, rec: UncertainRecord) -> Tuple[int, int]:
        """Possible rank range of ``rec`` (paper Def. 8), 1-based."""
        n = len(self.records)
        return (
            self.dominator_count(rec) + 1,
            n - self.dominated_count(rec),
        )

    def skyline(self) -> List[UncertainRecord]:
        """Records with no dominators (the non-dominated objects)."""
        return [r for r in self.records if self.dominator_count(r) == 0]

    def dominators(self, rec: UncertainRecord) -> List[UncertainRecord]:
        """Records that dominate ``rec`` (explicit ``O(n)`` scan)."""
        return [r for r in self.records if dominates(r, rec)]

    def dominated(self, rec: UncertainRecord) -> List[UncertainRecord]:
        """Records dominated by ``rec`` (explicit ``O(n)`` scan)."""
        return [r for r in self.records if dominates(rec, r)]

    # ------------------------------------------------------------------
    # probabilistic dominance
    # ------------------------------------------------------------------

    def probability_greater(
        self, a: UncertainRecord, b: UncertainRecord
    ) -> float:
        """``Pr(a > b)`` via the shared pairwise cache (Eq. 1)."""
        return self.cache.probability(a, b)

    def probabilistic_pairs(self) -> List[Tuple[UncertainRecord, UncertainRecord]]:
        """Pairs in the probabilistic dominance relation ``P``.

        These are exactly the unordered pairs with intersecting score
        intervals where neither record dominates the other, i.e.
        ``Pr(t_i > t_j)`` lies strictly inside ``(0, 1)``.
        """
        pairs = []
        for a, b in itertools.combinations(self.records, 2):
            if not dominates(a, b) and not dominates(b, a):
                pairs.append((a, b))
        return pairs

    # ------------------------------------------------------------------
    # Hasse diagram
    # ------------------------------------------------------------------

    def hasse_edges(
        self, max_records: int = 2000
    ) -> List[Tuple[UncertainRecord, UncertainRecord]]:
        """Edges of the Hasse diagram (transitive reduction of ``O``).

        An edge ``(a, b)`` means ``a`` is ranked directly above ``b``.
        Quadratic-to-cubic in the number of records, so guarded by
        ``max_records``; intended for inspection and tests, not for bulk
        query evaluation (which never needs the reduction).
        """
        n = len(self.records)
        if n > max_records:
            raise ModelError(
                f"hasse_edges is limited to {max_records} records (got {n})"
            )
        edges = []
        for a, b in itertools.permutations(self.records, 2):
            if not dominates(a, b):
                continue
            # Keep the edge only if no intermediate c gives a 2-step path.
            if any(
                dominates(a, c) and dominates(c, b)
                for c in self.records
                if c is not a and c is not b
            ):
                continue
            edges.append((a, b))
        return edges

    def to_networkx(self, reduced: bool = True) -> "nx.DiGraph":
        """The dominance DAG as a :class:`networkx.DiGraph`.

        Nodes are record identifiers. ``reduced`` selects the Hasse
        diagram; otherwise the full dominance relation is returned.
        """
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(r.record_id for r in self.records)
        if reduced:
            edge_iter: Iterable = self.hasse_edges()
        else:
            edge_iter = (
                (a, b)
                for a, b in itertools.permutations(self.records, 2)
                if dominates(a, b)
            )
        graph.add_edges_from(
            (a.record_id, b.record_id) for a, b in edge_iter
        )
        return graph
