"""The BASELINE exact algorithm (paper §V).

BASELINE materializes the linear-extension prefix tree (Algorithm 1
truncated at depth ``k``), computes the probability of every depth-``k``
node with the nested integral of Eq. 6, and answers queries by scanning
the annotated tree:

- **UTop-Prefix(k)**: the deepest nodes with the highest probabilities.
- **UTop-Rank(i, j)** for ``i, j <= k``: internal-node probabilities are
  the sums of their children's, so a record's rank-range probability is
  the sum over its node occurrences at depths ``i..j``.
- **UTop-Set(k)**: prefix probabilities aggregated over prefixes that
  contain the same record set.

The tree grows exponentially in the database size — that is the point:
BASELINE is the ground-truth-but-expensive comparator for Figures 9/10.
Per-node integrals use the exact evaluator when densities permit, or
Monte-Carlo integration of Eq. 6 otherwise (the paper's own choice).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .errors import QueryError
from .exact import ExactEvaluator, supports_exact
from .linext import ExtensionTreeNode, build_tree
from .montecarlo import MonteCarloEvaluator
from .ppo import ProbabilisticPartialOrder
from .records import UncertainRecord

__all__ = ["BaselineAlgorithm", "BaselineStats"]


@dataclass
class BaselineStats:
    """Work counters for a BASELINE run (Fig. 10's cost axis)."""

    nodes: int
    leaf_integrals: int
    elapsed: float


class BaselineAlgorithm:
    """Materializing evaluator over the depth-``k`` prefix tree.

    Parameters
    ----------
    records:
        The database ``D``.
    method:
        ``"exact"`` to evaluate Eq. 6 with the piecewise-polynomial
        engine (requires piecewise densities), ``"montecarlo"`` to use
        sampling as the paper did.
    samples:
        Monte-Carlo sample count per integral when
        ``method="montecarlo"``.
    rng / seed:
        Generator (or seed for a fresh one; default ``0``) driving the
        Monte-Carlo integrals, so BASELINE runs are reproducible by
        default.
    max_nodes:
        Safety cap on materialized tree nodes.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        method: str = "auto",
        samples: int = 10_000,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        max_nodes: int = 2_000_000,
    ) -> None:
        if method == "auto":
            method = "exact" if supports_exact(records) else "montecarlo"
        if method not in ("exact", "montecarlo"):
            raise QueryError(f"unknown BASELINE method {method!r}")
        self.records = list(records)
        self.method = method
        self.samples = samples
        self.max_nodes = max_nodes
        self.ppo = ProbabilisticPartialOrder(self.records)
        if method == "exact":
            self._exact = ExactEvaluator(self.records)
            self._sampler = None
        else:
            self._exact = None
            self._sampler = MonteCarloEvaluator(
                self.records, rng=rng, seed=seed
            )
        self._trees: Dict[int, Tuple[ExtensionTreeNode, BaselineStats]] = {}

    # ------------------------------------------------------------------
    # tree construction and annotation
    # ------------------------------------------------------------------

    def _prefix_probability(self, prefix: Sequence[UncertainRecord]) -> float:
        if self._exact is not None:
            return self._exact.prefix_probability(prefix)
        assert self._sampler is not None
        return self._sampler.prefix_probability(list(prefix), self.samples)

    def annotated_tree(self, k: int) -> Tuple[ExtensionTreeNode, BaselineStats]:
        """The depth-``k`` prefix tree with probabilities on every node.

        Leaf (depth-``k``) probabilities come from Eq. 6; internal nodes
        sum their children, exactly as §V describes. Trees are cached per
        depth.
        """
        if k < 1 or k > len(self.records):
            raise QueryError(f"invalid prefix length k={k}")
        cached = self._trees.get(k)
        if cached is not None:
            return cached
        start = time.perf_counter()
        root = build_tree(self.ppo, depth=k, max_nodes=self.max_nodes)
        integrals = 0
        prefix: List[UncertainRecord] = []

        def _annotate(node: ExtensionTreeNode) -> float:
            nonlocal integrals
            if node.record is not None:
                prefix.append(node.record)
            if node.depth == k or not node.children:
                integrals += 1
                node.probability = self._prefix_probability(prefix)
            else:
                node.probability = sum(
                    _annotate(child) for child in node.children
                )
            value = node.probability
            if node.record is not None:
                prefix.pop()
            return value

        _annotate(root)
        stats = BaselineStats(
            nodes=root.node_count(),
            leaf_integrals=integrals,
            elapsed=time.perf_counter() - start,
        )
        self._trees[k] = (root, stats)  # reprolint: disable=CON001 -- the baseline evaluator runs on the serial comparison rung only; thread reachability here is a by-name call-graph over-approximation
        return root, stats

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def utop_prefix(self, k: int, l: int = 1) -> List[Tuple[Tuple[str, ...], float]]:
        """The ``l`` most probable k-length prefixes with probabilities."""
        if l < 1:
            raise QueryError("l must be positive")
        root, _stats = self.annotated_tree(k)
        answers: List[Tuple[Tuple[str, ...], float]] = []
        path: List[str] = []

        def _collect(node: ExtensionTreeNode) -> None:
            if node.record is not None:
                path.append(node.record.record_id)
            if node.depth == k:
                answers.append((tuple(path), node.probability or 0.0))
            else:
                for child in node.children:
                    _collect(child)
            if node.record is not None:
                path.pop()

        _collect(root)
        answers.sort(key=lambda kv: (-kv[1], kv[0]))
        return answers[:l]

    def utop_set(self, k: int, l: int = 1) -> List[Tuple[FrozenSet[str], float]]:
        """The ``l`` most probable top-k sets, via prefix aggregation."""
        if l < 1:
            raise QueryError("l must be positive")
        prefixes = self.utop_prefix(k, l=10**9)
        by_set: Dict[FrozenSet[str], float] = {}
        for prefix, prob in prefixes:
            key = frozenset(prefix)
            by_set[key] = by_set.get(key, 0.0) + prob
        ranked = sorted(by_set.items(), key=lambda kv: (-kv[1], sorted(kv[0])))
        return ranked[:l]

    def utop_rank(
        self, i: int, j: int, l: int = 1, depth: Optional[int] = None
    ) -> List[Tuple[UncertainRecord, float]]:
        """The ``l`` most probable records at a rank in ``[i, j]``.

        Uses the annotated tree of depth ``max(j, depth)``: the
        probability of a record at rank range ``[i, j]`` is the sum of
        the probabilities of its node occurrences at depths ``i..j``.
        """
        if i < 1 or j < i:
            raise QueryError(f"invalid rank range [{i}, {j}]")
        if l < 1:
            raise QueryError("l must be positive")
        k = max(j, depth or 0)
        root, _stats = self.annotated_tree(k)
        mass: Dict[str, float] = {}
        for node in root.walk():  # reprolint: disable=ROB002 -- bounded: walk() traverses the already-materialized annotated tree, whose size was fixed (and budget-checked) at construction
            if node.record is None:
                continue
            if i <= node.depth <= j:
                rid = node.record.record_id
                mass[rid] = mass.get(rid, 0.0) + (node.probability or 0.0)
        ranked = sorted(mass.items(), key=lambda kv: (-kv[1], kv[0]))
        by_id = {rec.record_id: rec for rec in self.records}
        return [(by_id[rid], prob) for rid, prob in ranked[:l]]

    def stats(self, k: int) -> BaselineStats:
        """Work counters for the depth-``k`` tree (built if necessary)."""
        _root, stats = self.annotated_tree(k)
        return stats
