"""Cost-model-driven adaptive query planner for ``method="auto"``.

Inverts the reactive degradation ladder: instead of starting the most
expensive eligible stage and falling back as the budget drains, the
planner predicts each candidate stage's wall-clock from the fitted
cost model (:mod:`repro.core.costmodel`) and skips stages that cannot
finish inside the remaining deadline *before* any time is burned on
them. The existing ladder semantics stay intact as the fallback: a
planned stage that still misses its budget degrades exactly as before,
and the misprediction is fed back into the model so the next plan
learns from it.

Determinism contract:

- **Without a live budget the planner never alters execution.** It
  annotates the plan (predicted costs, chosen stage) but runs the
  ladder unchanged, so unbudgeted answers are byte-identical with
  planning on or off, and a planned answer is never lower-confidence
  than the reactive ladder's answer for the same inputs.
- **Under a budget the plan is a pure function of features** — the
  query spec, database fingerprint state, cache coverage, fitted
  coefficients, and the budget's remaining allowances — never of
  wall-clock measurements taken *during* the plan. Fixed inputs give a
  fixed plan.
- The planner only ever *skips* stages the ladder would have attempted
  and failed; it never reorders the ladder and never skips the
  Monte-Carlo or baseline stages (a partial Monte-Carlo answer always
  beats the baseline it would otherwise degrade to).

The one place a plan changes stage *inputs* rather than stage choice:
when the rank-count cache already covers a block of at least
``min_planned_samples`` samples but fewer than the requested count, a
deadline-constrained plan may serve straight from the covered block at
the reduced sample count instead of drawing a fresh top-up. The result
is flagged partial with its Wilson half-width, exactly like a
budget-clipped run of the same count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .budget import Budget
from .costmodel import CostModel, PlanFeatures, stage_key, stage_units

__all__ = ["PlannedStage", "QueryPlan", "QueryPlanner"]

#: Fraction of the remaining deadline a stage's prediction must fit in.
#: Below 1.0 so that near-miss predictions (the model is coarse) fail
#: closed: better to skip a stage that might have just fit than to burn
#: the whole deadline discovering it did not.
DEFAULT_HEADROOM = 0.8

#: Smallest covered block worth serving in place of a fresh top-up.
#: Below this, a reduced-count answer is too noisy to be a useful
#: substitute for drawing the samples the caller asked for.
DEFAULT_MIN_PLANNED_SAMPLES = 1000


@dataclass
class PlannedStage:
    """One ladder stage as the planner saw it before execution."""

    stage: str
    units: float
    predicted_seconds: float
    decision: str  # "chosen" | "fallback" | "skipped"
    reason: str
    planned_samples: Optional[int] = None
    actual_seconds: Optional[float] = None
    completed: Optional[bool] = None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "stage": self.stage,
            "units": self.units,
            "predicted_seconds": self.predicted_seconds,
            "decision": self.decision,
            "reason": self.reason,
        }
        if self.planned_samples is not None:
            payload["planned_samples"] = self.planned_samples
        if self.actual_seconds is not None:
            payload["actual_seconds"] = self.actual_seconds
        if self.completed is not None:
            payload["completed"] = self.completed
        return payload


@dataclass
class QueryPlan:
    """The full plan for one query: per-stage predictions + decisions.

    ``stages`` preserves ladder order. ``chosen`` is the first stage
    the planner expects to run to completion; under a budget, stages
    before it carry ``decision="skipped"`` and are pruned from the
    ladder, stages after it remain as fallbacks. ``planned_samples``
    is the covered-block sample reduction, when one applies.
    """

    kind: str
    features: PlanFeatures
    stages: List[PlannedStage] = field(default_factory=list)
    chosen: Optional[str] = None
    planned_samples: Optional[int] = None
    budgeted: bool = False
    mispredicted: bool = False

    def stage_named(self, name: str) -> Optional[PlannedStage]:
        for entry in self.stages:
            if entry.stage == name:
                return entry
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "features": self.features.to_dict(),
            "stages": [entry.to_dict() for entry in self.stages],
            "chosen": self.chosen,
            "planned_samples": self.planned_samples,
            "budgeted": self.budgeted,
            "mispredicted": self.mispredicted,
        }

    def diagnostics_dict(self) -> Dict[str, Any]:
        """The schedule-invariant subset safe for result diagnostics.

        Restricted to fields that are identical for a fixed spec seed
        and cache state regardless of worker count, backend, or timing:
        the chosen stage and each stage's decision/reason. Predicted
        and actual seconds ride along under timing-named keys, which
        the determinism sanitizer strips like every other timing.
        """
        return {
            "chosen": self.chosen,
            "stages": [
                {
                    "stage": entry.stage,
                    "decision": entry.decision,
                    "reason": entry.reason,
                    "predicted_seconds": entry.predicted_seconds,
                    "actual_seconds": entry.actual_seconds,
                }
                for entry in self.stages
            ],
        }


class QueryPlanner:
    """Predicts the cheapest ladder stage that fits the budget.

    Stateless apart from tunables; all fitted state lives in the
    :class:`~repro.core.costmodel.CostModel` (persisted per database
    fingerprint in the computation cache), which is what makes plans a
    pure function of (features, model state, budget allowances).
    """

    def __init__(
        self,
        headroom: float = DEFAULT_HEADROOM,
        min_planned_samples: int = DEFAULT_MIN_PLANNED_SAMPLES,
    ) -> None:
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        self.headroom = headroom
        self.min_planned_samples = max(1, int(min_planned_samples))

    # -- planning ------------------------------------------------------

    def plan(
        self,
        model: CostModel,
        features: PlanFeatures,
        stage_names: Sequence[str],
        budget: Optional[Budget] = None,
    ) -> QueryPlan:
        """Build the plan for one ``method="auto"`` ladder.

        ``stage_names`` is the reactive ladder in order. With no live
        budget (or a born-expired one) the plan is annotation-only:
        the first stage is ``chosen``, the rest are fallbacks, and the
        ladder runs unchanged. Under a live budget, stages predicted
        to exceed ``headroom × time_remaining`` — or whose enumeration
        space exceeds the budget's enumeration allowance — are marked
        ``skipped`` so the engine never starts them.
        """
        plan = QueryPlan(kind=features.kind, features=features)
        remaining = budget.time_remaining() if budget is not None else None
        enum_remaining = (
            budget.enumeration_remaining() if budget is not None else None
        )
        # A born-expired budget is left entirely to the reactive
        # ladder: _run_stages already emits the canonical
        # "budget-expired" skip events, and pruning here would only
        # change their wording.
        live = (
            budget is not None
            and not budget.expired()
            and (remaining is None or remaining > 0.0)
        )
        plan.budgeted = live

        planned_samples = self._planned_samples(features, live)
        plan.planned_samples = planned_samples

        allowance = (
            None
            if not live or remaining is None
            else remaining * self.headroom
        )

        for name in stage_names:
            units = stage_units(
                features,
                name,
                planned_samples if name == "montecarlo" else None,
            )
            predicted = model.predict(stage_key(features.kind, name), units)
            entry = PlannedStage(
                stage=name,
                units=units,
                predicted_seconds=predicted,
                decision="fallback",
                reason="",
            )
            if name == "montecarlo" and planned_samples is not None:
                entry.planned_samples = planned_samples

            skip_reason = self._skip_reason(
                name, features, predicted, allowance, enum_remaining, live
            )
            if skip_reason is not None and plan.chosen is None:
                entry.decision = "skipped"
                entry.reason = skip_reason
            elif plan.chosen is None:
                entry.decision = "chosen"
                entry.reason = (
                    "predicted to fit budget"
                    if live
                    else "first ladder stage (no live budget)"
                )
                plan.chosen = name
            else:
                entry.reason = "retained as fallback"
            plan.stages.append(entry)

        if plan.chosen is None and plan.stages:
            # Every stage was predicted over budget; the last ladder
            # stage (baseline, free) still runs rather than nothing.
            tail = plan.stages[-1]
            tail.decision = "chosen"
            tail.reason = "last resort: all stages predicted over budget"
            plan.chosen = tail.stage
        return plan

    def _planned_samples(
        self, features: PlanFeatures, live: bool
    ) -> Optional[int]:
        """Covered-block sample reduction, when one is worthwhile.

        Only under a live budget (never changing unbudgeted answers),
        and only when the cache holds a covered block that is smaller
        than the request but at least ``min_planned_samples``: serving
        it avoids the fresh top-up draw entirely.
        """
        if not live:
            return None
        covered = features.covered_samples
        requested = features.requested_samples
        if 0 < covered < requested and covered >= self.min_planned_samples:
            return covered
        return None

    def _skip_reason(
        self,
        name: str,
        features: PlanFeatures,
        predicted: float,
        allowance: Optional[float],
        enum_remaining: Optional[int],
        live: bool,
    ) -> Optional[str]:
        """Why a stage should be pruned, or ``None`` to keep it.

        Monte-Carlo and baseline are never pruned: Monte-Carlo clips
        gracefully to a flagged partial that always beats the baseline
        it would degrade to, and the baseline is the free floor.
        """
        if not live or name in ("montecarlo", "baseline"):
            return None
        if (
            name == "exact"
            and enum_remaining is not None
            and features.kind in ("utop_prefix", "utop_set")
        ):
            space = features.prefix_space
            if space is None or space > enum_remaining:
                return (
                    "prefix space "
                    f"{'unbounded' if space is None else space} exceeds "
                    f"enumeration allowance {enum_remaining}"
                )
        if allowance is not None and predicted > allowance:
            return (
                f"predicted {predicted:.4f}s exceeds "
                f"{allowance:.4f}s allowance"
            )
        return None

    # -- feedback ------------------------------------------------------

    def feedback(
        self,
        model: CostModel,
        plan: QueryPlan,
        stage_seconds: Dict[str, float],
        used: Optional[str],
    ) -> bool:
        """Fold measured stage timings back into the cost model.

        ``stage_seconds`` maps executed stage name → wall seconds (from
        the engine's stage attempts); ``used`` is the stage whose
        answer was returned. Every executed stage updates the model: a
        stage that ran but was not the one used (it failed or was
        skipped mid-run) counts as incomplete, raising its fitted rate
        geometrically. Returns ``True`` when the plan mispredicted —
        its chosen stage executed but did not produce the answer.
        """
        mispredicted = False
        for entry in plan.stages:
            seconds = stage_seconds.get(entry.stage)
            if seconds is None:
                continue
            completed = entry.stage == used
            entry.actual_seconds = seconds
            entry.completed = completed
            model.observe(
                stage_key(plan.kind, entry.stage),
                entry.units,
                seconds,
                completed=completed,
            )
            if (
                not completed
                and plan.budgeted
                and entry.decision == "chosen"
            ):
                mispredicted = True
        plan.mispredicted = mispredicted
        return mispredicted
