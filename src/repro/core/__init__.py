"""Core model and query-evaluation algorithms of the reproduction.

Re-exports the main public names so ``repro.core`` is usable directly.
"""

from .distributions import (
    ConvolutionScore,
    DiscreteScore,
    HistogramScore,
    MixtureScore,
    PointScore,
    SamplingPlan,
    ScoreDistribution,
    TriangularScore,
    TruncatedExponentialScore,
    TruncatedGaussianScore,
    UniformScore,
    build_sampling_plan,
)
from .errors import (
    ConvergenceError,
    EvaluationError,
    InjectedFault,
    ModelError,
    QueryError,
    ReproError,
)
from .numeric import wilson_half_width
from .analysis import (
    comparability_ratio,
    expected_ranks,
    most_uncertain_pairs,
    rank_entropies,
    rank_variances,
    uncertainty_summary,
)
from .baseline import BaselineAlgorithm, BaselineStats
from .budget import Budget, CancellationToken, SampleCounts
from .cache import (
    CacheStats,
    ComputationCache,
    RankCountStore,
    fingerprint_records,
    shared_cache,
)
from .chaos import (
    FaultInjector,
    FaultSchedule,
    FaultyDistribution,
    FaultyOracle,
    crashing_factory,
)
from .correlation import CorrelatedMonteCarloEvaluator, GaussianCopula
from .diagnostics import ConvergenceTrace, gelman_rubin
from .engine import RankingEngine
from .exact import ExactEvaluator, supports_exact
from .mcmc import (
    MCMCResult,
    MetropolisHastingsChain,
    TopKSimulation,
    prefix_probability_upper_bound,
    set_probability_upper_bound,
)
from .metrics import (
    MetricsRegistry,
    active_registry,
    global_registry,
    use_registry,
)
from .montecarlo import MonteCarloEvaluator, compile_plan
from .naive import expected_score_ranking, mode_aggregation_ranking
from .parallel import DEFAULT_SHARDS, ParallelSampler, resolve_workers
from .pairwise import PairwiseCache, probability_greater
from .queries import (
    DegradationEvent,
    PrefixAnswer,
    Query,
    QueryResult,
    RankAggAnswer,
    RankAggQuery,
    RecordAnswer,
    SetAnswer,
    UTopPrefixQuery,
    UTopRankQuery,
    UTopSetQuery,
)
from .rank_agg import (
    empirical_rank_matrix,
    footrule_distance,
    kendall_tau_distance,
    optimal_rank_aggregation,
)
from .piecewise import PiecewisePolynomial
from .ppo import ProbabilisticPartialOrder, dominates
from .pruning import ShrinkResult, shrink_database, upper_bound_list
from .records import UncertainRecord, certain, tie_break, uniform
from .trace import (
    Span,
    current_span,
    render_trace,
    span,
)
from .validation import ValidationIssue, validate_distribution, validate_records

__all__ = [
    "BaselineAlgorithm",
    "BaselineStats",
    "Budget",
    "CacheStats",
    "CancellationToken",
    "ComputationCache",
    "RankCountStore",
    "fingerprint_records",
    "shared_cache",
    "ConvergenceError",
    "ConvergenceTrace",
    "ConvolutionScore",
    "CorrelatedMonteCarloEvaluator",
    "GaussianCopula",
    "DegradationEvent",
    "EvaluationError",
    "ExactEvaluator",
    "FaultInjector",
    "FaultSchedule",
    "FaultyDistribution",
    "FaultyOracle",
    "InjectedFault",
    "MCMCResult",
    "MetropolisHastingsChain",
    "MetricsRegistry",
    "MonteCarloEvaluator",
    "DEFAULT_SHARDS",
    "ParallelSampler",
    "SampleCounts",
    "SamplingPlan",
    "build_sampling_plan",
    "resolve_workers",
    "PrefixAnswer",
    "Query",
    "QueryResult",
    "RankAggAnswer",
    "RankAggQuery",
    "RankingEngine",
    "RecordAnswer",
    "SetAnswer",
    "TopKSimulation",
    "UTopPrefixQuery",
    "UTopRankQuery",
    "UTopSetQuery",
    "empirical_rank_matrix",
    "expected_ranks",
    "expected_score_ranking",
    "footrule_distance",
    "gelman_rubin",
    "kendall_tau_distance",
    "mode_aggregation_ranking",
    "most_uncertain_pairs",
    "optimal_rank_aggregation",
    "prefix_probability_upper_bound",
    "rank_entropies",
    "rank_variances",
    "set_probability_upper_bound",
    "uncertainty_summary",
    "HistogramScore",
    "MixtureScore",
    "ModelError",
    "PairwiseCache",
    "PiecewisePolynomial",
    "DiscreteScore",
    "PointScore",
    "ProbabilisticPartialOrder",
    "QueryError",
    "ReproError",
    "ScoreDistribution",
    "ShrinkResult",
    "TriangularScore",
    "TruncatedExponentialScore",
    "TruncatedGaussianScore",
    "UncertainRecord",
    "UniformScore",
    "certain",
    "comparability_ratio",
    "compile_plan",
    "crashing_factory",
    "dominates",
    "probability_greater",
    "shrink_database",
    "supports_exact",
    "tie_break",
    "uniform",
    "upper_bound_list",
    "wilson_half_width",
    "ValidationIssue",
    "validate_distribution",
    "validate_records",
    "Span",
    "active_registry",
    "current_span",
    "global_registry",
    "render_trace",
    "span",
    "use_registry",
]
