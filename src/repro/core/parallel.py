"""Deterministic sharded execution of Monte-Carlo estimators.

Sampling-based answers are embarrassingly parallel — the §VI-C error
bound ``O(1 / sqrt(s))`` does not care which worker drew which sample —
but naive parallelism destroys reproducibility: results would depend on
thread scheduling. This module shards a sample budget over a **fixed**
number of shards, gives each shard its own :class:`numpy.random.Generator`
derived from a root :class:`numpy.random.SeedSequence` (child seeds
depend only on the root seed and the shard index), and merges partial
results in shard order. Consequences:

- For a given ``(seed, shards)`` pair the merged counts and estimates
  are **bit-identical for any worker count and any backend** — workers
  only decide which thread or process happens to execute a shard, never
  what the shard computes.
- Shard evaluators are plain :class:`~repro.core.montecarlo.
  MonteCarloEvaluator` instances (or copula-aware subclasses via the
  ``factory`` hook), so every estimator stays available.

Two execution backends share that contract:

- ``backend="thread"`` — a lazily created, reusable
  :class:`~concurrent.futures.ThreadPoolExecutor`. The columnar kernels
  spend their time inside NumPy, which releases the GIL, and thread
  workers share the immutable per-shard evaluators without pickling the
  database — but Python-level shard bookkeeping still serializes on the
  GIL.
- ``backend="process"`` — a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` reused across
  queries. The compiled :class:`~repro.core.distributions.SamplingPlan`
  is exported once into a shared-memory segment
  (:meth:`SamplingPlan.export_shared`); workers attach it zero-copy and
  cache per-shard evaluators keyed by segment name, so a task ships
  only a shard index and a method spec. Budgets cross the process line
  through :meth:`~repro.core.budget.Budget.worker_view`; per-shard
  spans and counters are recorded worker-side and grafted back into the
  parent's span tree and metrics registry. A worker death surfaces as
  ``BrokenProcessPool``: the pool is rebuilt and the dead shards rerun
  once with the same ``SeedSequence`` children, so the retried run is
  byte-identical.

``backend="auto"`` picks processes above a measured database-size
crossover (:data:`PROCESS_CROSSOVER`) on multi-core hosts and threads
below it. See docs/DEVELOPMENT.md, "Performance architecture".
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import weakref
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from . import metrics
from .budget import Budget, SampleCounts, WorkerBudget, WorkerBudgetView
from .distributions import SamplingPlan, SharedPlanHandle
from .errors import EvaluationError, QueryError
from .metrics import MetricsRegistry, active_registry, use_registry
from .montecarlo import MonteCarloEvaluator, select_top_rank_candidates
from .trace import Span, activate, current_span, span_under
from .numeric import clamp_probability
from .records import UncertainRecord

__all__ = [
    "ParallelSampler",
    "resolve_workers",
    "DEFAULT_SHARDS",
    "PROCESS_CROSSOVER",
]

logger = logging.getLogger(__name__)

_T = TypeVar("_T")

#: Fixed default shard count. Shards — not workers — define the RNG
#: stream layout, so this must stay constant for results to be
#: comparable across machines with different core counts.
DEFAULT_SHARDS = 8

#: ``workers="auto"`` never claims more threads than this; sampling
#: saturates memory bandwidth well before high core counts pay off.
_AUTO_WORKER_CAP = 8

#: Database size at which ``backend="auto"`` switches from threads to
#: processes (multi-core hosts only). Measured with
#: ``benchmarks/bench_sampling_backend.py``: below ~2000 records a
#: shard's NumPy kernels finish in tens of microseconds and the
#: per-task IPC round-trip dominates; above it the GIL-free workers
#: win. See BENCH_sampling.json.
PROCESS_CROSSOVER = 2000

#: Start method for the process backend. ``fork`` (Linux) inherits the
#: parent's modules and the shared-segment registry, making worker
#: start-up cheap; elsewhere fall back to ``spawn``, where workers
#: re-import and attach segments by name.
_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

_BACKENDS = ("thread", "process", "auto")

_OVERSUB_LOCK = threading.Lock()
_oversub_warned = False


def _warn_oversubscribed(resolved: int, cpus: int) -> None:
    """Warn (once per process) when the worker count exceeds the cores."""
    global _oversub_warned
    with _OVERSUB_LOCK:
        if _oversub_warned:
            return
        _oversub_warned = True
    logger.warning(
        "workers=%d exceeds os.cpu_count()=%d; results are unaffected "
        "but the extra workers only add scheduling overhead",
        resolved,
        cpus,
    )


def resolve_workers(
    workers: Union[int, str, None] = "auto",
    tasks: Optional[int] = None,
) -> int:
    """Turn a ``workers`` knob value into a concrete worker count.

    Precedence: an explicit argument beats the ``REPRO_WORKERS``
    environment variable, which beats the CPU count. Concretely:
    ``None`` and ``1`` mean serial; an explicit positive integer is
    taken as-is; ``"auto"`` (the default) uses ``REPRO_WORKERS`` when
    set, otherwise ``os.cpu_count()`` capped at ``_AUTO_WORKER_CAP``.
    ``tasks`` optionally caps the result at the available parallelism
    (no point spawning more workers than shards). A resolution above
    the machine's core count logs a one-time warning — results never
    change, only scheduling overhead.
    """
    if workers is None:
        resolved = 1
    elif isinstance(workers, str):
        if workers != "auto":
            raise QueryError(f"unknown workers value {workers!r}")
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                resolved = int(env)
            except ValueError:
                raise QueryError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                )
            if resolved < 1:
                raise QueryError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                )
        else:
            resolved = max(1, min(os.cpu_count() or 1, _AUTO_WORKER_CAP))
    else:
        resolved = int(workers)
        if resolved < 1:
            raise QueryError("workers must be a positive integer")
    cpus = os.cpu_count() or 1
    if resolved > cpus:
        _warn_oversubscribed(resolved, cpus)
    if tasks is not None:
        resolved = max(1, min(resolved, tasks))
    return resolved


class ParallelSampler:
    """Sharded, deterministic front-end over per-shard evaluators.

    Parameters
    ----------
    records:
        The database (after any pruning); used by the default factory
        and for answer formatting.
    seed:
        Root seed. Shard ``i`` receives the ``i``-th child of
        ``SeedSequence(seed)``, so shard streams are independent and
        reproducible.
    workers:
        Worker count, ``"auto"``, or ``None``/1 for serial execution.
        Changing it never changes any result, only wall-clock time.
    shards:
        Number of sample shards (default :data:`DEFAULT_SHARDS`).
        Changing it *does* change the RNG stream layout and therefore
        the sampled values (not their distribution).
    factory:
        Optional ``(seed) -> MonteCarloEvaluator`` constructor for the
        per-shard evaluators; inject a copula-aware builder here.
        Factories are closures and cannot cross process boundaries, so
        they are incompatible with ``backend="process"`` (``"auto"``
        falls back to threads).
    plan:
        Optional precompiled sampling plan (``compile_plan`` over the
        same records) forwarded to the default factory so the shard
        evaluators share one compiled plan instead of building
        ``shards`` copies. Ignored when ``factory`` is given.
    backend:
        ``"thread"`` (default), ``"process"``, or ``"auto"`` (processes
        above :data:`PROCESS_CROSSOVER` records on multi-core hosts).
        Merged results are bit-identical across backends; the knob only
        trades dispatch overhead against GIL-free execution.

    Determinism contract
    --------------------
    Every public method takes an optional ``seed`` (default 0) that is
    forwarded as the per-call seed of each shard evaluator, so results
    depend only on ``(constructor seed, shards, method, arguments)`` —
    never on call order, worker count, backend, or thread scheduling.

    Lifecycle
    ---------
    Worker pools and the shared-memory segment are created lazily and
    reused across calls; :meth:`close` (or the context-manager form)
    releases them. A closed sampler stays usable — resources are
    re-created on the next call — so a shared computation cache may
    hand one sampler to several engines.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        seed: int = 0,
        workers: Union[int, str, None] = "auto",
        shards: int = DEFAULT_SHARDS,
        factory: Optional[Callable[[int], MonteCarloEvaluator]] = None,
        plan: Optional[SamplingPlan] = None,
        backend: str = "thread",
    ) -> None:
        if shards < 1:
            raise QueryError("shards must be a positive integer")
        if backend not in _BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.records = list(records)
        self.shards = int(shards)
        self.workers = resolve_workers(workers, tasks=self.shards)
        self._default_factory = factory is None
        if backend == "auto":
            backend = (
                "process"
                if (
                    self._default_factory
                    and self.workers > 1
                    and (os.cpu_count() or 1) > 1
                    and len(self.records) >= PROCESS_CROSSOVER
                )
                else "thread"
            )
        if backend == "process" and not self._default_factory:
            raise QueryError(
                "backend='process' requires the default evaluator factory; "
                "custom factories (e.g. copula-aware evaluators) cannot "
                "cross process boundaries — use backend='thread'"
            )
        self.backend = backend
        self._seed_seq = np.random.SeedSequence(seed)
        self._plan = plan
        if factory is None:
            factory = lambda s: MonteCarloEvaluator(
                self.records, seed=s, plan=plan
            )
        # Child seeds depend only on (seed, shard index): hash the
        # spawned child sequences down to ints so each shard evaluator
        # owns a full SeedSequence root for its per-call streams.
        self._child_seeds: List[int] = [
            int(child.generate_state(1, dtype=np.uint64)[0])
            for child in self._seed_seq.spawn(self.shards)
        ]
        self._evaluators: List[MonteCarloEvaluator] = [
            factory(s) for s in self._child_seeds
        ]
        self._pool_lock = threading.Lock()
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._segment_handle: Optional[SharedPlanHandle] = None
        self._segment_finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    # pool and segment lifecycle
    # ------------------------------------------------------------------

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        """The reusable shard thread pool, created on first use."""
        with self._pool_lock:
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=min(self.workers, self.shards),
                    thread_name_prefix="repro-shard",
                )
            return self._thread_pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        """The persistent worker-process pool, created on first use."""
        with self._pool_lock:
            if self._process_pool is None:
                self._process_pool = ProcessPoolExecutor(
                    max_workers=min(self.workers, self.shards),
                    mp_context=multiprocessing.get_context(_START_METHOD),
                )
            return self._process_pool

    def _discard_process_pool(self) -> None:
        """Drop a (possibly broken) process pool; the next use rebuilds."""
        with self._pool_lock:
            pool = self._process_pool
            self._process_pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _ensure_segment(self) -> SharedPlanHandle:
        """Export the sampling plan (plus worker bootstrap) once."""
        with self._pool_lock:
            if self._segment_handle is None:
                plan = (
                    self._plan
                    if self._plan is not None
                    else self._evaluators[0]._plan
                )
                handle = plan.export_shared(
                    extra={
                        "records": self.records,
                        "child_seeds": self._child_seeds,
                    }
                )
                self._segment_handle = handle
                # GC backstop: a sampler dropped without close() must
                # not leak a named kernel object.
                self._segment_finalizer = weakref.finalize(
                    self, handle.unlink
                )
            return self._segment_handle

    def close(self) -> None:
        """Tear down pools and the shared segment. Idempotent.

        The sampler remains usable afterwards: pools and the segment
        are re-created lazily on the next call.
        """
        with self._pool_lock:
            thread_pool = self._thread_pool
            process_pool = self._process_pool
            handle = self._segment_handle
            finalizer = self._segment_finalizer
            self._thread_pool = None
            self._process_pool = None
            self._segment_handle = None
            self._segment_finalizer = None
        if thread_pool is not None:
            thread_pool.shutdown(wait=True)
        if process_pool is not None:
            process_pool.shutdown(wait=True)
        if finalizer is not None:
            finalizer.detach()
        if handle is not None:
            handle.unlink()

    def __enter__(self) -> "ParallelSampler":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------

    def shard_sizes(self, samples: int) -> List[int]:
        """Deterministic near-even split of ``samples`` across shards."""
        if samples < 1:
            raise QueryError("need at least one sample")
        base, extra = divmod(samples, self.shards)
        return [base + (1 if i < extra else 0) for i in range(self.shards)]

    def _map_shards(
        self,
        fn: Callable[[int, int], _T],
        samples: int,
        spec: Optional[Dict[str, Any]] = None,
        budget: Optional[Budget] = None,
    ) -> List[Tuple[int, _T]]:
        """Run ``fn(shard_index, shard_samples)`` over all busy shards.

        Results come back in shard order regardless of which worker ran
        which shard; empty shards (budget smaller than the shard count)
        are skipped deterministically. ``spec`` describes the same
        per-shard work as an evaluator method call so the process
        backend can ship it to workers instead of the closure.

        Fault tolerance: a shard that raises is retried **once** with
        the same shard index — and therefore the same evaluator and the
        same ``SeedSequence`` child — so a transient worker fault never
        changes what the shard computes, only when. Because per-call
        streams are derived from ``(shard seed, call seed)`` alone, the
        retry reproduces the crashed attempt bit-for-bit. A second
        failure surfaces as :class:`~repro.core.errors.EvaluationError`.
        The process backend extends the same semantics to worker
        *death*: ``BrokenProcessPool`` rebuilds the pool and reruns the
        affected shards once.
        """
        tasks = [
            (idx, size)
            for idx, size in enumerate(self.shard_sizes(samples))
            if size > 0
        ]
        if (
            self.backend == "process"
            and spec is not None
            and self.workers > 1
            and len(tasks) > 1
        ):
            return self._map_shards_process(spec, tasks, budget)
        # Worker threads start with a fresh context: capture the active
        # span and metrics registry here, in the dispatching thread, and
        # re-install them inside each shard so per-shard spans land on
        # this query's trace and emissions hit this engine's registry.
        parent = current_span()
        registry = active_registry()

        def attempt(idx: int, size: int) -> _T:
            with use_registry(registry):
                with span_under(
                    parent, "shard", shard=idx, samples=size
                ) as shard_span:
                    try:
                        return fn(idx, size)
                    except QueryError:
                        # Invalid arguments fail identically on retry;
                        # surface them unchanged.
                        raise
                    except Exception as exc:
                        logger.warning(
                            "shard %d failed (%s: %s); retrying once with "
                            "the same seed stream",
                            idx,
                            type(exc).__name__,
                            exc,
                        )
                        metrics.inc("shard_retries_total")
                        if shard_span is not None:
                            shard_span.set(retried=True)
                        try:
                            return fn(idx, size)
                        except Exception as retry_exc:
                            raise EvaluationError(
                                f"shard {idx} failed twice: {retry_exc}"
                            ) from retry_exc

        if self.workers == 1 or len(tasks) <= 1:
            return [(idx, attempt(idx, size)) for idx, size in tasks]
        pool = self._ensure_thread_pool()
        results = list(pool.map(lambda t: attempt(t[0], t[1]), tasks))
        return [(idx, result) for (idx, _), result in zip(tasks, results)]

    def _map_shards_process(
        self,
        spec: Dict[str, Any],
        tasks: List[Tuple[int, int]],
        budget: Optional[Budget],
    ) -> List[Tuple[int, Any]]:
        """Dispatch shard specs to the persistent process pool.

        Mirrors the thread path's retry contract (one retry per shard,
        same seeds) and its observability: each worker records a local
        ``shard`` span and counter deltas, which are grafted into the
        parent span tree and replayed into the active registry here.
        While futures are outstanding the dispatcher keeps the budget's
        shared block fresh so cancellations and deadline crossings
        reach workers at their next chunk boundary.
        """
        parent = current_span()
        registry = active_registry()
        handle = self._ensure_segment()
        view = budget.worker_view() if budget is not None else None
        payloads: Dict[int, Dict[str, Any]] = {
            idx: {
                "segment": handle.name,
                "shard": idx,
                "size": size,
                "spec": spec,
                "budget": view,
                "trace": parent is not None,
            }
            for idx, size in tasks
        }
        results: Dict[int, Tuple[Any, Optional[Dict[str, Any]], list]] = {}
        retried: Set[int] = set()
        pending: List[int] = [idx for idx, _ in tasks]
        for round_index in range(2):
            if not pending:
                break
            pool = self._ensure_process_pool()
            try:
                futures: Dict[int, Future] = {
                    idx: pool.submit(_process_shard, payloads[idx])
                    for idx in pending
                }
            except RuntimeError:
                # The previous round's crash can poison the executor
                # between rounds; rebuild and resubmit.
                self._discard_process_pool()
                pool = self._ensure_process_pool()
                futures = {
                    idx: pool.submit(_process_shard, payloads[idx])
                    for idx in pending
                }
            outstanding = set(futures.values())
            while outstanding:  # reprolint: disable-line=ROB001 -- bounded: every future resolves (normally or BrokenProcessPool) and the set only shrinks
                done, outstanding = wait(outstanding, timeout=0.05)
                if budget is not None:
                    budget.sync_shared()
            failures: Dict[int, BaseException] = {}
            pool_broken = False
            for idx in pending:
                exc = futures[idx].exception()
                if exc is None:
                    results[idx] = futures[idx].result()
                elif isinstance(exc, QueryError):
                    # Invalid arguments fail identically on retry.
                    raise exc
                else:
                    failures[idx] = exc
                    if isinstance(exc, BrokenProcessPool):
                        pool_broken = True
            if pool_broken:
                self._discard_process_pool()
            if failures and round_index == 1:
                idx = min(failures)
                raise EvaluationError(
                    f"shard {idx} failed twice: {failures[idx]}"
                ) from failures[idx]
            for idx in sorted(failures):
                logger.warning(
                    "shard %d failed in worker process (%s: %s); retrying "
                    "once with the same seed stream",
                    idx,
                    type(failures[idx]).__name__,
                    failures[idx],
                )
                metrics.inc("shard_retries_total")
            retried.update(failures)
            pending = sorted(failures)
        out: List[Tuple[int, Any]] = []
        for idx, _size in tasks:
            value, span_export, counter_rows = results[idx]
            if parent is not None and span_export is not None:
                node = parent.adopt(span_export)
                if idx in retried:
                    node.set(retried=True)
            if counter_rows:
                registry.absorb_counters(counter_rows)
            out.append((idx, value))
        return out

    # ------------------------------------------------------------------
    # merged estimators
    # ------------------------------------------------------------------

    def sample_scores(self, samples: int, seed: int = 0) -> np.ndarray:
        """Draw ``(samples, n)`` scores, shards stacked in shard order."""

        def draw(idx: int, size: int) -> np.ndarray:
            return self._evaluators[idx].sample_scores(size, seed=seed)

        parts = self._map_shards(
            draw,
            samples,
            spec={"method": "sample_scores", "kwargs": {"seed": seed}},
        )
        return np.vstack([part for _, part in parts])

    def sample_rankings(self, samples: int, seed: int = 0) -> np.ndarray:
        """Ranked sample rows (record indices by rank), shards stacked."""
        scores = self.sample_scores(samples, seed=seed)
        return np.argsort(-scores, axis=1, kind="stable")

    def rank_count_matrix(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: int = 0,
    ) -> np.ndarray:
        """Merged ``(n, max_rank)`` rank-occurrence counts (Eq. 7)."""

        def count(idx: int, size: int) -> np.ndarray:
            return self._evaluators[idx].rank_count_matrix(
                size, max_rank=max_rank, seed=seed
            )

        parts = self._map_shards(
            count,
            samples,
            spec={
                "method": "rank_count_matrix",
                "kwargs": {"max_rank": max_rank, "seed": seed},
            },
        )
        merged = parts[0][1].copy()
        for _, part in parts[1:]:
            merged += part
        return merged

    def rank_counts(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: int = 0,
        budget: Optional[Budget] = None,
    ) -> SampleCounts:
        """Merged budget-aware rank counts across all shards.

        Each shard checks the shared ``budget`` (deadline/cancellation)
        at its own chunk boundaries; merged ``done``/``requested``
        tallies report how much of the total request completed. Sample
        caps should be enforced by the *caller* granting an exact
        sample count via :meth:`Budget.take_samples` before calling —
        shards racing on a shared sample cap would make the grant split
        scheduling-dependent.
        """

        def count(idx: int, size: int) -> SampleCounts:
            return self._evaluators[idx].rank_counts(
                size, max_rank=max_rank, seed=seed, budget=budget
            )

        parts = self._map_shards(
            count,
            samples,
            spec={
                "method": "rank_counts",
                "kwargs": {"max_rank": max_rank, "seed": seed},
            },
            budget=budget,
        )
        merged = parts[0][1]
        for _, part in parts[1:]:
            merged = merged.merge(part)
        return merged

    def rank_probability_matrix(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: int = 0,
    ) -> np.ndarray:
        """Merged ``eta_r(t)`` estimate across all shards."""
        counts = self.rank_count_matrix(samples, max_rank=max_rank, seed=seed)
        return counts / samples

    def top_rank_candidates(
        self,
        i: int,
        j: int,
        l: int,
        samples: int,
        seed: int = 0,
    ) -> List[Tuple[UncertainRecord, float]]:
        """The ``l`` most probable records for ranks ``[i, j]``, merged."""
        matrix = self.rank_probability_matrix(samples, max_rank=j, seed=seed)
        return select_top_rank_candidates(self.records, matrix, i, j, l)

    def estimate(
        self,
        method: str,
        argument: object,
        samples: int,
        seed: int = 0,
    ) -> float:
        """Sample-weighted merge of any mean-based scalar estimator.

        ``method`` names a :class:`MonteCarloEvaluator` estimator taking
        ``(argument, samples, seed=...)`` — e.g.
        ``"prefix_probability_sis"`` or ``"top_set_probability_cdf"``.
        Each shard computes its own mean over its share of the budget;
        weighting by shard size recovers exactly the pooled mean, so the
        merged value is the same unbiased estimate a single evaluator
        would produce over one combined stream.
        """

        def run(idx: int, size: int) -> float:
            fn = getattr(self._evaluators[idx], method)
            return float(fn(argument, size, seed=seed)) * size

        parts = self._map_shards(
            run,
            samples,
            spec={
                "method": method,
                "before": (argument,),
                "kwargs": {"seed": seed},
                "scale": True,
            },
        )
        total = float(sum(part for _, part in parts))
        return total / samples

    def prefix_probability(
        self, prefix: Sequence, samples: int, seed: int = 0
    ) -> float:
        """Merged Eq. 6 indicator estimate."""
        return clamp_probability(
            self.estimate("prefix_probability", prefix, samples, seed=seed)
        )

    def prefix_probability_sis(
        self, prefix: Sequence, samples: int, seed: int = 0
    ) -> float:
        """Merged sequential-importance-sampling estimate of Eq. 6."""
        return clamp_probability(
            self.estimate(
                "prefix_probability_sis", prefix, samples, seed=seed
            )
        )

    def top_set_probability(
        self, record_set: Iterable, samples: int, seed: int = 0
    ) -> float:
        """Merged top-k set indicator estimate."""
        return clamp_probability(
            self.estimate(
                "top_set_probability", record_set, samples, seed=seed
            )
        )

    def top_set_probability_cdf(
        self, record_set: Iterable, samples: int, seed: int = 0
    ) -> float:
        """Merged CDF-product top-k set estimate."""
        return clamp_probability(
            self.estimate(
                "top_set_probability_cdf", record_set, samples, seed=seed
            )
        )

    # ------------------------------------------------------------------
    # empirical state distributions
    # ------------------------------------------------------------------

    def empirical_top_prefixes(
        self, k: int, samples: int, seed: int = 0
    ) -> Dict[Tuple[str, ...], float]:
        """Merged frequencies of observed top-k prefixes."""

        def count(idx: int, size: int) -> Dict[Tuple[str, ...], int]:
            return self._evaluators[idx].empirical_top_prefix_counts(
                k, size, seed=seed
            )

        merged: Dict[Tuple[str, ...], int] = {}
        spec = {
            "method": "empirical_top_prefix_counts",
            "before": (k,),
            "kwargs": {"seed": seed},
        }
        for _, part in self._map_shards(count, samples, spec=spec):
            for key, value in part.items():
                merged[key] = merged.get(key, 0) + value
        return {key: value / samples for key, value in merged.items()}

    def empirical_top_sets(
        self, k: int, samples: int, seed: int = 0
    ) -> Dict[FrozenSet[str], float]:
        """Merged frequencies of observed top-k sets."""

        def count(idx: int, size: int) -> Dict[FrozenSet[str], int]:
            return self._evaluators[idx].empirical_top_set_counts(
                k, size, seed=seed
            )

        merged: Dict[FrozenSet[str], int] = {}
        spec = {
            "method": "empirical_top_set_counts",
            "before": (k,),
            "kwargs": {"seed": seed},
        }
        for _, part in self._map_shards(count, samples, spec=spec):
            for key, value in part.items():
                merged[key] = merged.get(key, 0) + value
        return {key: value / samples for key, value in merged.items()}


# ----------------------------------------------------------------------
# worker-process side
# ----------------------------------------------------------------------


class _WorkerShardContext:
    """Per-segment state cached inside one worker process.

    Built on a worker's first task for a given segment: the attached
    (zero-copy) sampling plan, the unpickled records, and the shard
    child seeds. Per-shard evaluators and attached budget blocks are
    memoized so repeat tasks ship nothing but a shard index and a spec.
    Worker processes execute tasks single-threaded, so no locking.
    """

    __slots__ = ("plan", "records", "child_seeds", "_evaluators", "_budgets")

    def __init__(self, segment_name: str) -> None:
        plan = SamplingPlan.attach_shared(SharedPlanHandle(segment_name))
        extra = plan.shared_extra or {}
        self.plan = plan
        self.records = extra["records"]
        self.child_seeds = extra["child_seeds"]
        self._evaluators: Dict[int, MonteCarloEvaluator] = {}
        self._budgets: Dict[str, WorkerBudget] = {}

    def evaluator(self, shard: int) -> MonteCarloEvaluator:
        evaluator = self._evaluators.get(shard)
        if evaluator is None:
            evaluator = MonteCarloEvaluator(
                self.records, seed=self.child_seeds[shard], plan=self.plan
            )
            self._evaluators[shard] = evaluator  # reprolint: disable=CON001 -- worker-process-side cache: each pool worker is single-threaded, so its context is never shared
        return evaluator

    def budget(self, view: WorkerBudgetView) -> WorkerBudget:
        budget = self._budgets.get(view.name)
        if budget is None:
            budget = WorkerBudget(view)
            self._budgets[view.name] = budget  # reprolint: disable=CON001 -- worker-process-side cache: each pool worker is single-threaded, so its context is never shared
        return budget


_WORKER_CONTEXTS: Dict[str, _WorkerShardContext] = {}


def _worker_context(segment_name: str) -> _WorkerShardContext:
    """This worker's cached context for one exported segment."""
    context = _WORKER_CONTEXTS.get(segment_name)
    if context is None:
        context = _WorkerShardContext(segment_name)
        _WORKER_CONTEXTS[segment_name] = context  # reprolint: disable=CON001 -- populated only inside single-threaded pool workers, never in the parent
    return context


def _process_shard(
    payload: Dict[str, Any],
) -> Tuple[Any, Optional[Dict[str, Any]], list]:
    """Run one shard's evaluator call inside a worker process.

    Observability marshalling: contextvars do not cross processes, so
    the shard runs under a worker-local span and a private metrics
    registry; the exported span tree and counter rows return with the
    result for the dispatcher to graft/replay parent-side.
    """
    context = _worker_context(payload["segment"])
    shard = payload["shard"]
    size = payload["size"]
    spec = payload["spec"]
    evaluator = context.evaluator(shard)
    kwargs = dict(spec.get("kwargs") or {})
    view = payload.get("budget")
    if view is not None:
        kwargs["budget"] = context.budget(view)
    registry = MetricsRegistry()
    root: Optional[Span] = (
        Span("shard", shard=shard, samples=size) if payload["trace"] else None
    )
    try:
        with use_registry(registry):
            with activate(root):
                value = getattr(evaluator, spec["method"])(
                    *spec.get("before", ()), size, **kwargs
                )
                if spec.get("scale"):
                    value = float(value) * size
    finally:
        if root is not None:
            root.end()
    span_export = root.to_dict() if root is not None else None
    return value, span_export, registry.counter_items()
