"""Deterministic sharded execution of Monte-Carlo estimators.

Sampling-based answers are embarrassingly parallel — the §VI-C error
bound ``O(1 / sqrt(s))`` does not care which worker drew which sample —
but naive parallelism destroys reproducibility: results would depend on
thread scheduling. This module shards a sample budget over a **fixed**
number of shards, gives each shard its own :class:`numpy.random.Generator`
derived from a root :class:`numpy.random.SeedSequence` (child seeds
depend only on the root seed and the shard index), and merges partial
results in shard order. Consequences:

- For a given ``(seed, shards)`` pair the merged counts and estimates
  are **bit-identical for any worker count** — workers only decide which
  thread happens to execute a shard, never what the shard computes.
- Shard evaluators are plain :class:`~repro.core.montecarlo.
  MonteCarloEvaluator` instances (or copula-aware subclasses via the
  ``factory`` hook), so every estimator stays available.

Threads, not processes: the columnar kernels spend their time inside
NumPy, which releases the GIL, and thread workers share the immutable
per-shard evaluators without pickling the database.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

import numpy as np

from . import metrics
from .budget import Budget, SampleCounts
from .distributions import SamplingPlan
from .errors import EvaluationError, QueryError
from .metrics import active_registry, use_registry
from .montecarlo import MonteCarloEvaluator, select_top_rank_candidates
from .trace import current_span, span_under
from .numeric import clamp_probability
from .records import UncertainRecord

__all__ = ["ParallelSampler", "resolve_workers", "DEFAULT_SHARDS"]

logger = logging.getLogger(__name__)

_T = TypeVar("_T")

#: Fixed default shard count. Shards — not workers — define the RNG
#: stream layout, so this must stay constant for results to be
#: comparable across machines with different core counts.
DEFAULT_SHARDS = 8

#: ``workers="auto"`` never claims more threads than this; sampling
#: saturates memory bandwidth well before high core counts pay off.
_AUTO_WORKER_CAP = 8


def resolve_workers(
    workers: Union[int, str, None] = "auto",
    tasks: Optional[int] = None,
) -> int:
    """Turn a ``workers`` knob value into a concrete thread count.

    ``None`` and ``1`` mean serial; ``"auto"`` uses ``os.cpu_count()``
    capped at ``_AUTO_WORKER_CAP``; an explicit positive integer is
    taken as-is. ``tasks`` optionally caps the result at the available
    parallelism (no point spawning more threads than shards).
    """
    if workers is None:
        resolved = 1
    elif isinstance(workers, str):
        if workers != "auto":
            raise QueryError(f"unknown workers value {workers!r}")
        resolved = max(1, min(os.cpu_count() or 1, _AUTO_WORKER_CAP))
    else:
        resolved = int(workers)
        if resolved < 1:
            raise QueryError("workers must be a positive integer")
    if tasks is not None:
        resolved = max(1, min(resolved, tasks))
    return resolved


class ParallelSampler:
    """Sharded, deterministic front-end over per-shard evaluators.

    Parameters
    ----------
    records:
        The database (after any pruning); used by the default factory
        and for answer formatting.
    seed:
        Root seed. Shard ``i`` receives the ``i``-th child of
        ``SeedSequence(seed)``, so shard streams are independent and
        reproducible.
    workers:
        Thread count, ``"auto"``, or ``None``/1 for serial execution.
        Changing it never changes any result, only wall-clock time.
    shards:
        Number of sample shards (default :data:`DEFAULT_SHARDS`).
        Changing it *does* change the RNG stream layout and therefore
        the sampled values (not their distribution).
    factory:
        Optional ``(seed) -> MonteCarloEvaluator`` constructor for the
        per-shard evaluators; inject a copula-aware builder here.
    plan:
        Optional precompiled sampling plan (``compile_plan`` over the
        same records) forwarded to the default factory so the shard
        evaluators share one compiled plan instead of building
        ``shards`` copies. Ignored when ``factory`` is given.

    Determinism contract
    --------------------
    Every public method takes an optional ``seed`` (default 0) that is
    forwarded as the per-call seed of each shard evaluator, so results
    depend only on ``(constructor seed, shards, method, arguments)`` —
    never on call order, worker count, or thread scheduling.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        seed: int = 0,
        workers: Union[int, str, None] = "auto",
        shards: int = DEFAULT_SHARDS,
        factory: Optional[Callable[[int], MonteCarloEvaluator]] = None,
        plan: Optional[SamplingPlan] = None,
    ) -> None:
        if shards < 1:
            raise QueryError("shards must be a positive integer")
        self.records = list(records)
        self.shards = int(shards)
        self.workers = resolve_workers(workers, tasks=self.shards)
        self._seed_seq = np.random.SeedSequence(seed)
        if factory is None:
            factory = lambda s: MonteCarloEvaluator(
                self.records, seed=s, plan=plan
            )
        # Child seeds depend only on (seed, shard index): hash the
        # spawned child sequences down to ints so each shard evaluator
        # owns a full SeedSequence root for its per-call streams.
        child_seeds = [
            int(child.generate_state(1, dtype=np.uint64)[0])
            for child in self._seed_seq.spawn(self.shards)
        ]
        self._evaluators: List[MonteCarloEvaluator] = [
            factory(s) for s in child_seeds
        ]

    # ------------------------------------------------------------------
    # shard plumbing
    # ------------------------------------------------------------------

    def shard_sizes(self, samples: int) -> List[int]:
        """Deterministic near-even split of ``samples`` across shards."""
        if samples < 1:
            raise QueryError("need at least one sample")
        base, extra = divmod(samples, self.shards)
        return [base + (1 if i < extra else 0) for i in range(self.shards)]

    def _map_shards(
        self,
        fn: Callable[[int, int], _T],
        samples: int,
    ) -> List[Tuple[int, _T]]:
        """Run ``fn(shard_index, shard_samples)`` over all busy shards.

        Results come back in shard order regardless of which worker ran
        which shard; empty shards (budget smaller than the shard count)
        are skipped deterministically.

        Fault tolerance: a shard that raises is retried **once** with
        the same shard index — and therefore the same evaluator and the
        same ``SeedSequence`` child — so a transient worker fault never
        changes what the shard computes, only when. Because per-call
        streams are derived from ``(shard seed, call seed)`` alone, the
        retry reproduces the crashed attempt bit-for-bit. A second
        failure surfaces as :class:`~repro.core.errors.EvaluationError`.
        """
        tasks = [
            (idx, size)
            for idx, size in enumerate(self.shard_sizes(samples))
            if size > 0
        ]
        # Worker threads start with a fresh context: capture the active
        # span and metrics registry here, in the dispatching thread, and
        # re-install them inside each shard so per-shard spans land on
        # this query's trace and emissions hit this engine's registry.
        parent = current_span()
        registry = active_registry()

        def attempt(idx: int, size: int) -> _T:
            with use_registry(registry):
                with span_under(
                    parent, "shard", shard=idx, samples=size
                ) as shard_span:
                    try:
                        return fn(idx, size)
                    except QueryError:
                        # Invalid arguments fail identically on retry;
                        # surface them unchanged.
                        raise
                    except Exception as exc:
                        logger.warning(
                            "shard %d failed (%s: %s); retrying once with "
                            "the same seed stream",
                            idx,
                            type(exc).__name__,
                            exc,
                        )
                        metrics.inc("shard_retries_total")
                        if shard_span is not None:
                            shard_span.set(retried=True)
                        try:
                            return fn(idx, size)
                        except Exception as retry_exc:
                            raise EvaluationError(
                                f"shard {idx} failed twice: {retry_exc}"
                            ) from retry_exc

        if self.workers == 1 or len(tasks) <= 1:
            return [(idx, attempt(idx, size)) for idx, size in tasks]
        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(tasks))
        ) as pool:
            results = list(pool.map(lambda t: attempt(t[0], t[1]), tasks))
        return [(idx, result) for (idx, _), result in zip(tasks, results)]

    # ------------------------------------------------------------------
    # merged estimators
    # ------------------------------------------------------------------

    def sample_scores(self, samples: int, seed: int = 0) -> np.ndarray:
        """Draw ``(samples, n)`` scores, shards stacked in shard order."""

        def draw(idx: int, size: int) -> np.ndarray:
            return self._evaluators[idx].sample_scores(size, seed=seed)

        parts = self._map_shards(draw, samples)
        return np.vstack([part for _, part in parts])

    def sample_rankings(self, samples: int, seed: int = 0) -> np.ndarray:
        """Ranked sample rows (record indices by rank), shards stacked."""
        scores = self.sample_scores(samples, seed=seed)
        return np.argsort(-scores, axis=1, kind="stable")

    def rank_count_matrix(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: int = 0,
    ) -> np.ndarray:
        """Merged ``(n, max_rank)`` rank-occurrence counts (Eq. 7)."""

        def count(idx: int, size: int) -> np.ndarray:
            return self._evaluators[idx].rank_count_matrix(
                size, max_rank=max_rank, seed=seed
            )

        parts = self._map_shards(count, samples)
        merged = parts[0][1].copy()
        for _, part in parts[1:]:
            merged += part
        return merged

    def rank_counts(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: int = 0,
        budget: Optional[Budget] = None,
    ) -> SampleCounts:
        """Merged budget-aware rank counts across all shards.

        Each shard checks the shared ``budget`` (deadline/cancellation)
        at its own chunk boundaries; merged ``done``/``requested``
        tallies report how much of the total request completed. Sample
        caps should be enforced by the *caller* granting an exact
        sample count via :meth:`Budget.take_samples` before calling —
        shards racing on a shared sample cap would make the grant split
        scheduling-dependent.
        """

        def count(idx: int, size: int) -> SampleCounts:
            return self._evaluators[idx].rank_counts(
                size, max_rank=max_rank, seed=seed, budget=budget
            )

        parts = self._map_shards(count, samples)
        merged = parts[0][1]
        for _, part in parts[1:]:
            merged = merged.merge(part)
        return merged

    def rank_probability_matrix(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: int = 0,
    ) -> np.ndarray:
        """Merged ``eta_r(t)`` estimate across all shards."""
        counts = self.rank_count_matrix(samples, max_rank=max_rank, seed=seed)
        return counts / samples

    def top_rank_candidates(
        self,
        i: int,
        j: int,
        l: int,
        samples: int,
        seed: int = 0,
    ) -> List[Tuple[UncertainRecord, float]]:
        """The ``l`` most probable records for ranks ``[i, j]``, merged."""
        matrix = self.rank_probability_matrix(samples, max_rank=j, seed=seed)
        return select_top_rank_candidates(self.records, matrix, i, j, l)

    def estimate(
        self,
        method: str,
        argument: object,
        samples: int,
        seed: int = 0,
    ) -> float:
        """Sample-weighted merge of any mean-based scalar estimator.

        ``method`` names a :class:`MonteCarloEvaluator` estimator taking
        ``(argument, samples, seed=...)`` — e.g.
        ``"prefix_probability_sis"`` or ``"top_set_probability_cdf"``.
        Each shard computes its own mean over its share of the budget;
        weighting by shard size recovers exactly the pooled mean, so the
        merged value is the same unbiased estimate a single evaluator
        would produce over one combined stream.
        """

        def run(idx: int, size: int) -> float:
            fn = getattr(self._evaluators[idx], method)
            return float(fn(argument, size, seed=seed)) * size

        parts = self._map_shards(run, samples)
        total = float(sum(part for _, part in parts))
        return total / samples

    def prefix_probability(
        self, prefix: Sequence, samples: int, seed: int = 0
    ) -> float:
        """Merged Eq. 6 indicator estimate."""
        return clamp_probability(
            self.estimate("prefix_probability", prefix, samples, seed=seed)
        )

    def prefix_probability_sis(
        self, prefix: Sequence, samples: int, seed: int = 0
    ) -> float:
        """Merged sequential-importance-sampling estimate of Eq. 6."""
        return clamp_probability(
            self.estimate(
                "prefix_probability_sis", prefix, samples, seed=seed
            )
        )

    def top_set_probability(
        self, record_set: Iterable, samples: int, seed: int = 0
    ) -> float:
        """Merged top-k set indicator estimate."""
        return clamp_probability(
            self.estimate(
                "top_set_probability", record_set, samples, seed=seed
            )
        )

    def top_set_probability_cdf(
        self, record_set: Iterable, samples: int, seed: int = 0
    ) -> float:
        """Merged CDF-product top-k set estimate."""
        return clamp_probability(
            self.estimate(
                "top_set_probability_cdf", record_set, samples, seed=seed
            )
        )

    # ------------------------------------------------------------------
    # empirical state distributions
    # ------------------------------------------------------------------

    def empirical_top_prefixes(
        self, k: int, samples: int, seed: int = 0
    ) -> Dict[Tuple[str, ...], float]:
        """Merged frequencies of observed top-k prefixes."""

        def count(idx: int, size: int) -> Dict[Tuple[str, ...], int]:
            return self._evaluators[idx].empirical_top_prefix_counts(
                k, size, seed=seed
            )

        merged: Dict[Tuple[str, ...], int] = {}
        for _, part in self._map_shards(count, samples):
            for key, value in part.items():
                merged[key] = merged.get(key, 0) + value
        return {key: value / samples for key, value in merged.items()}

    def empirical_top_sets(
        self, k: int, samples: int, seed: int = 0
    ) -> Dict[FrozenSet[str], float]:
        """Merged frequencies of observed top-k sets."""

        def count(idx: int, size: int) -> Dict[FrozenSet[str], int]:
            return self._evaluators[idx].empirical_top_set_counts(
                k, size, seed=seed
            )

        merged: Dict[FrozenSet[str], int] = {}
        for _, part in self._map_shards(count, samples):
            for key, value in part.items():
                merged[key] = merged.get(key, 0) + value
        return {key: value / samples for key, value in merged.items()}
