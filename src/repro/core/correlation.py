"""Correlated score sampling (extension beyond the paper).

The paper assumes independent score densities (§II-A), which makes
Eq. 1 and the CDF-product shortcuts valid. Real uncertain data is often
correlated — neighbouring sensors drift together, listings in one
building share a pricing error — and correlation changes ranking
probabilities even when every marginal stays fixed.

This module adds a Gaussian-copula model on top of the existing
marginals: sample a correlated Gaussian vector, map it through the
standard normal CDF to correlated uniforms, and push those through each
record's quantile function. Marginals are preserved exactly; only the
joint is altered.

Only estimators that never exploit independence remain valid, so
:class:`CorrelatedMonteCarloEvaluator` keeps the indicator-based
estimators (rank probabilities, prefix/set/extension indicators) and
refuses the CDF-product and sequential-importance shortcuts.
"""

from __future__ import annotations

import math
from typing import Iterable, NoReturn, Optional, Sequence

import numpy as np
from scipy import special

from .distributions import SamplingPlan
from .errors import ModelError, QueryError
from .montecarlo import MonteCarloEvaluator
from .records import UncertainRecord

__all__ = ["GaussianCopula", "CorrelatedMonteCarloEvaluator"]


class GaussianCopula:
    """A Gaussian copula over ``n`` uncertain scores.

    Parameters
    ----------
    correlation:
        Symmetric positive semi-definite ``(n, n)`` matrix with unit
        diagonal. The identity recovers independence.
    """

    def __init__(self, correlation: np.ndarray) -> None:
        matrix = np.asarray(correlation, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ModelError("correlation must be a square matrix")
        if not np.allclose(matrix, matrix.T, atol=1e-12):
            raise ModelError("correlation matrix must be symmetric")
        if not np.allclose(np.diag(matrix), 1.0, atol=1e-12):
            raise ModelError("correlation matrix needs a unit diagonal")
        # Eigen-decomposition tolerates the semi-definite case
        # (e.g. perfect correlation), unlike Cholesky.
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        if eigenvalues.min() < -1e-10:
            raise ModelError("correlation matrix must be positive semi-definite")
        scale = np.sqrt(np.clip(eigenvalues, 0.0, None))
        self._transform = eigenvectors * scale
        self.correlation = matrix

    @property
    def dimension(self) -> int:
        """Number of coordinates the copula couples."""
        return self.correlation.shape[0]

    def sample_uniforms(
        self, rng: np.random.Generator, samples: int
    ) -> np.ndarray:
        """Draw ``(samples, n)`` correlated uniforms on ``(0, 1)``."""
        z = rng.standard_normal((samples, self.dimension))
        correlated = z @ self._transform.T
        u = 0.5 * (1.0 + special.erf(correlated / math.sqrt(2.0)))
        # Keep strictly inside (0, 1) so ppf never sees the endpoints.
        eps = np.finfo(float).tiny
        return np.clip(u, eps, 1.0 - eps)

    @classmethod
    def exchangeable(cls, n: int, rho: float) -> "GaussianCopula":
        """Equi-correlated copula: every pair shares correlation ``rho``.

        Positive semi-definiteness requires ``-1/(n-1) <= rho <= 1``.
        """
        if n < 1:
            raise ModelError("dimension must be positive")
        if n > 1 and not (-1.0 / (n - 1) - 1e-12 <= rho <= 1.0):
            raise ModelError(
                f"rho={rho} is not feasible for an exchangeable copula "
                f"of dimension {n}"
            )
        matrix = np.full((n, n), float(rho))
        np.fill_diagonal(matrix, 1.0)
        return cls(matrix)


class CorrelatedMonteCarloEvaluator(MonteCarloEvaluator):
    """Monte-Carlo evaluation under copula-correlated scores.

    Indicator-based estimators (rank probabilities, prefix/set/extension
    frequencies) remain unbiased because they only need joint samples.
    The CDF-product and sequential-importance estimators factor the
    joint into marginals and are therefore disabled.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        copula: GaussianCopula,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        plan: Optional[SamplingPlan] = None,
    ) -> None:
        super().__init__(records, rng=rng, seed=seed, plan=plan)
        if copula.dimension != len(self.records):
            raise ModelError(
                f"copula dimension {copula.dimension} does not match "
                f"{len(self.records)} records"
            )
        self.copula = copula

    def _draw(self, rng: np.random.Generator, samples: int) -> np.ndarray:
        """Correlated score vectors via the copula.

        The copula produces an ``(s, n)`` matrix of correlated uniforms
        and the columnar plan pushes each family group through its
        quantile function in one batched call. Overriding ``_draw``
        (rather than individual estimators) routes every indicator-based
        estimator through the correlated joint.
        """
        uniforms = self.copula.sample_uniforms(rng, samples)
        return self._plan.ppf(uniforms)

    def _independence_only(self, name: str) -> NoReturn:
        raise QueryError(
            f"{name} exploits score independence and is invalid under a "
            "copula; use the indicator-based estimators instead"
        )

    def prefix_probability_cdf(
        self, prefix: Sequence, samples: int, seed: Optional[int] = None
    ) -> NoReturn:  # noqa: D102
        self._independence_only("prefix_probability_cdf")

    def prefix_probability_sis(
        self, prefix: Sequence, samples: int, seed: Optional[int] = None
    ) -> NoReturn:  # noqa: D102
        self._independence_only("prefix_probability_sis")

    def top_set_probability_cdf(
        self, record_set: Iterable, samples: int, seed: Optional[int] = None
    ) -> NoReturn:  # noqa: D102
        self._independence_only("top_set_probability_cdf")
