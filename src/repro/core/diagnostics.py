"""Convergence diagnostics for multi-chain MCMC (paper §VI-D).

The paper judges chain mixing with the Gelman–Rubin statistic [Gelman &
Rubin 1992]: run several independent chains from dispersed starting
points, compare the within-chain variance ``W`` of a scalar summary to the
between-chain variance ``B``, and declare convergence when the potential
scale reduction factor (PSRF) approaches 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .errors import EvaluationError

__all__ = ["gelman_rubin", "ConvergenceTrace"]


def gelman_rubin(chains: Sequence[Sequence[float]]) -> float:
    """Potential scale reduction factor for one scalar summary.

    Parameters
    ----------
    chains:
        One numeric sequence per chain. Only the second half of each
        chain is used (the customary burn-in discard); chains are
        truncated to the shortest length.

    Returns
    -------
    float
        The PSRF; values close to 1 indicate the chains have mixed.
        Degenerate inputs (zero within-chain variance everywhere) return
        exactly 1.0, matching the "all chains agree" interpretation.
    """
    if len(chains) < 2:
        raise EvaluationError("Gelman-Rubin needs at least two chains")
    length = min(len(c) for c in chains)
    if length < 4:
        raise EvaluationError(
            "Gelman-Rubin needs at least four samples per chain"
        )
    half = length // 2
    data = np.array(
        [np.asarray(c, dtype=float)[:length][length - half :] for c in chains]
    )
    m, n = data.shape
    chain_means = data.mean(axis=1)
    chain_vars = data.var(axis=1, ddof=1)
    w = chain_vars.mean()
    b_over_n = chain_means.var(ddof=1)
    if w <= 0.0:
        return 1.0 if b_over_n <= 0.0 else float("inf")
    var_plus = (n - 1) / n * w + b_over_n
    return float(np.sqrt(var_plus / w))


@dataclass
class ConvergenceTrace:
    """PSRF observations collected while a multi-chain simulation runs."""

    steps: List[int]
    psrf: List[float]
    elapsed: List[float]

    def converged_at(self, threshold: float) -> int | None:
        """First recorded step count where PSRF dropped below ``threshold``."""
        for step, value in zip(self.steps, self.psrf):
            if value <= threshold:
                return step
        return None
