"""`RankingEngine` — the library's main entry point.

Ties the pieces of the paper together the way its evaluation does:

1. **Prune** the database with k-dominance (Algorithm 2) at the level the
   query allows (``j`` for UTop-Rank(i, j), ``k`` for TOP-k queries;
   rank aggregation needs all ranks and is never pruned).
2. **Pick an evaluation method**: exact (piecewise-polynomial integrals)
   when the densities allow it and the answer space is small enough to
   enumerate; Monte-Carlo integration for RECORD-RANK queries (the
   paper's §VI-C choice); multi-chain MCMC for TOP-k queries over large
   spaces (§VI-D).
3. **Return** typed answers with probabilities and execution metadata.

Every query family funnels through one dispatcher,
:meth:`RankingEngine.query`, which takes a frozen
:class:`~repro.core.queries.Query` spec; the public ``utop_rank`` /
``utop_prefix`` / ``utop_set`` / ``rank_aggregation`` /
``threshold_topk`` methods are thin wrappers that build specs. The
dispatcher owns the cross-cutting bookkeeping — timing, the cache
delta, degradation events, the optional per-query trace
(:mod:`repro.core.trace`), and metrics (:mod:`repro.core.metrics`) —
so it lives in exactly one place.

Example
-------
>>> from repro import uniform, certain
>>> from repro.core.engine import RankingEngine
>>> db = [certain("a1", 9.0), uniform("a2", 5.0, 8.0), certain("a3", 7.0)]
>>> engine = RankingEngine(db, seed=7)
>>> engine.utop_rank(1, 1).top.record_id
'a1'
"""

from __future__ import annotations

import hashlib
import logging
import math
import os
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .budget import Budget
from .cache import (
    CacheStats,
    ComputationCache,
    MigrationReport,
    fingerprint_records,
    shared_cache,
)
from .errors import EvaluationError, QueryError
from .exact import ExactEvaluator, supports_exact
from .linext import count_prefixes, enumerate_prefixes
from .mcmc import TopKSimulation
from .metrics import MetricsRegistry, global_registry, use_registry
from .montecarlo import (
    MonteCarloEvaluator,
    compile_plan,
    select_top_rank_candidates,
)
from .costmodel import (
    CostModel,
    PlanFeatures,
    overlap_density,
    stage_key,
)
from .numeric import wilson_half_width
from .parallel import (
    DEFAULT_SHARDS,
    PROCESS_CROSSOVER,
    ParallelSampler,
    resolve_workers,
)
from .planner import QueryPlan, QueryPlanner
from .ppo import ProbabilisticPartialOrder
from .pruning import shrink_database
from .queries import (
    DegradationEvent,
    PrefixAnswer,
    Query,
    QueryResult,
    RankAggAnswer,
    RecordAnswer,
    SetAnswer,
)
from .rank_agg import optimal_rank_aggregation
from .records import UncertainRecord
from .trace import Span, activate, span
from .validation import validate_records

__all__ = ["RankingEngine"]

logger = logging.getLogger(__name__)


class _StageSkipped(EvaluationError):
    """A ladder stage declined to run (typically: budget already drained)."""


@dataclass(frozen=True)
class _LegacyChanges:
    """``changes_since``-shaped view of a bare table version counter.

    Legacy duck-typed tables cannot say *what* changed, only *that*
    something did: ``deltas`` is ``None`` whenever the counter moved, so
    the refresh path falls back to wholesale invalidation.
    """

    version: int
    deltas: Optional[tuple]


@dataclass
class _EvalContext:
    """Mutable per-query state shared between the dispatcher and evaluators.

    Replaces the per-method ``nonlocal`` bookkeeping the wrapper era
    copy-pasted: evaluators record degradation events, partial/truncated
    flags, confidence bounds, and diagnostics here, and
    :meth:`RankingEngine.query` folds the fields into the
    :class:`QueryResult` exactly once.
    """

    budget: Optional[Budget]
    method: str
    sampler_seed: int
    mcmc_seed: int
    backend: str = "thread"
    events: List[DegradationEvent] = field(default_factory=list)
    partial: bool = False
    truncated: bool = False
    half_width: Optional[float] = None
    error_bound: Optional[float] = None
    diagnostics: Dict[str, Any] = field(default_factory=dict)
    pruned_size: int = 0
    used: str = ""
    # Planner state: the plan built for this query (auto only), the
    # cost model it consulted (for post-run feedback), the sample count
    # a covered-block plan substituted for the request, and per-stage
    # wall seconds measured by _run_stages for the fitting loop.
    plan: Optional[QueryPlan] = None
    plan_model: Optional[CostModel] = None
    plan_samples: Optional[int] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)


class RankingEngine:
    """High-level evaluator for ranking queries over uncertain scores.

    Parameters
    ----------
    records:
        The database ``D`` of :class:`UncertainRecord`.
    seed:
        Seed for all randomized evaluation (Monte-Carlo, MCMC). The
        default ``0`` makes every run reproducible out of the box; pass
        ``None`` to opt into OS entropy explicitly.
    prune:
        Whether to apply k-dominance pruning ahead of evaluation.
    exact_record_limit:
        Maximum (pruned) database size for which exact per-rank
        probabilities are computed; larger inputs use Monte-Carlo.
    prefix_enumeration_limit:
        Maximum number of distinct k-prefixes that the exact TOP-k path
        will enumerate; larger spaces switch to MCMC.
    samples:
        Default Monte-Carlo sample count (the paper's experiments use
        10,000).
    mcmc_chains / mcmc_steps / psrf_threshold:
        Multi-chain simulation parameters for TOP-k queries.
    copula:
        Optional :class:`~repro.core.correlation.GaussianCopula` over
        the records (in database order) modelling score correlation.
        When set, evaluation is restricted to the sampling-based methods
        that remain valid without independence: UTop-Rank, rank
        distributions, and rank aggregation run on correlated samples;
        UTop-Prefix/UTop-Set fall back to empirical frequencies
        (``method="montecarlo"``); exact and MCMC paths are refused.
        k-dominance pruning stays sound because dominance is a
        support-containment property that holds on every joint sample.
    workers:
        ``None`` (default) keeps the legacy single-evaluator sampling
        path. Any other value — an integer, ``"auto"``, or even ``1`` —
        switches the Monte-Carlo paths to the sharded
        :class:`~repro.core.parallel.ParallelSampler` and runs MCMC
        chains on that many threads. Because shard streams are derived
        from a fixed shard count, every result is identical for every
        worker count; the knob only changes wall-clock time.
    backend:
        Where sharded sampling work runs when ``workers`` is set:
        ``"thread"`` (default) uses an in-process pool, ``"process"``
        ships the compiled sampling plan to a pool of worker processes
        through shared memory (no pickling per task), and ``"auto"``
        picks processes only when it can pay off — multiple workers, a
        multi-core host, and a database at least
        :data:`~repro.core.parallel.PROCESS_CROSSOVER` records large.
        Results are bit-identical across backends (shard streams are
        derived the same way everywhere); a per-query ``backend=``
        override narrows or widens the choice for one query. A copula
        forces threads — correlated evaluators are built from closures
        that cannot cross a process boundary — and ``"process"`` with a
        copula is refused at construction.
    budget:
        Optional default :class:`~repro.core.budget.Budget` applied to
        every query (a per-query ``budget=`` argument overrides it).
        With a budget in force, ``method="auto"`` degrades along the
        ladder exact → Monte-Carlo → score-median baseline instead of
        raising, recording a :class:`DegradationEvent` per sacrificed
        stage on the result; Monte-Carlo stages return best-so-far
        partial estimates with a Wilson confidence half-width when the
        budget drains mid-run.
    cache:
        The computation cache backing this engine (see
        :mod:`repro.core.cache`). ``None`` (default) gives the engine a
        private cache: every compiled plan, evaluator, pairwise
        integral, and Monte-Carlo sample block is reused across this
        engine's queries, with no coupling to other engines.
        ``"shared"`` joins the process-wide :func:`~repro.core.cache.
        shared_cache`, so engines over content-identical databases
        serve each other's work. Passing a
        :class:`~repro.core.cache.ComputationCache` instance shares
        exactly with whoever else holds it. Answers are unaffected by
        the choice — cached sample blocks reproduce cold runs bit for
        bit — only time and memory change; budgeted queries charge
        their budget only for samples the cache cannot supply.
    trace:
        When ``True``, every query opens a root :class:`~repro.core.
        trace.Span` with child spans per evaluation stage and attaches
        the tree to ``QueryResult.trace``. Off (the default) the span
        helpers are no-ops and answers are byte-identical to untraced
        runs; a per-query ``trace=`` argument overrides this default in
        either direction.
    metrics:
        The :class:`~repro.core.metrics.MetricsRegistry` this engine's
        queries emit into (counters such as ``queries_total`` and
        ``samples_drawn_total``, plus ``query_duration_seconds``
        histograms). ``None`` (default) uses the process-wide
        :func:`~repro.core.metrics.global_registry`; pass a private
        registry for isolated accounting. Metrics are always on — their
        cost is a few dictionary increments per query.
    planner:
        Whether ``method="auto"`` consults the cost-model planner
        (:mod:`repro.core.planner`) before running. ``True`` (default)
        uses a default-tuned :class:`~repro.core.planner.QueryPlanner`;
        pass an instance for custom headroom, or ``False`` for the
        purely reactive ladder. Unbudgeted answers are byte-identical
        either way — without a live budget the planner only annotates;
        under one it skips ladder stages predicted to blow the budget
        (each skip recorded as a :class:`DegradationEvent` with a
        ``planner:`` reason) and may serve a covered rank-count block
        at reduced sample count, flagged partial. Fitted cost
        coefficients live in the computation cache, keyed per database
        fingerprint.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        seed: Optional[int] = 0,
        prune: bool = True,
        exact_record_limit: int = 20,
        prefix_enumeration_limit: int = 20_000,
        samples: int = 10_000,
        mcmc_chains: int = 10,
        mcmc_steps: int = 3_000,
        psrf_threshold: float = 1.05,
        copula=None,
        workers: Union[int, str, None] = None,
        backend: str = "thread",
        budget: Optional[Budget] = None,
        cache: Union[ComputationCache, str, None] = None,
        trace: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        planner: Union[bool, QueryPlanner] = True,
    ) -> None:
        if not records:
            raise QueryError("cannot rank an empty database")
        if backend not in ("thread", "process", "auto"):
            raise QueryError(f"unknown execution backend {backend!r}")
        if backend == "process" and copula is not None:
            raise QueryError(
                "backend='process' is unavailable with a copula: "
                "correlated evaluators cannot cross a process boundary; "
                "use backend='thread' or 'auto'"
            )
        self.records = list(records)
        self.rng = np.random.default_rng(seed)
        # Resolve eagerly so a bad value fails at construction, not at
        # the first query.
        self.workers: Optional[int] = (
            None if workers is None else resolve_workers(workers)
        )
        self.backend = backend
        # Every ParallelSampler this engine builds, so close() can tear
        # down their pools and shared-memory segments. Samplers re-create
        # resources lazily, so a closed engine (or a sampler shared
        # through a common cache) remains usable — close() only releases
        # what is currently held.
        self._owned_samplers: List[ParallelSampler] = []
        self.prune = prune
        self.exact_record_limit = exact_record_limit
        self.prefix_enumeration_limit = prefix_enumeration_limit
        self.samples = samples
        self.mcmc_chains = mcmc_chains
        self.mcmc_steps = mcmc_steps
        self.psrf_threshold = psrf_threshold
        self.budget = budget
        self.copula = copula
        self.trace = trace
        self._metrics = metrics if metrics is not None else global_registry()
        if isinstance(planner, QueryPlanner):
            self.planner: Optional[QueryPlanner] = planner
        else:
            self.planner = QueryPlanner() if planner else None
        if copula is not None and copula.dimension != len(self.records):
            raise QueryError(
                f"copula dimension {copula.dimension} does not match "
                f"database size {len(self.records)}"
            )
        if cache is None:
            self.cache: ComputationCache = ComputationCache()
        elif isinstance(cache, str):
            if cache != "shared":
                raise QueryError(f"unknown cache setting {cache!r}")
            self.cache = shared_cache()
        else:
            self.cache = cache
        # Stable per-engine stream roots, drawn once: queries become
        # pure functions of (records, constructor seed, query args), so
        # their sampled artifacts are addressable across queries — the
        # old per-call rng draws made every call a fresh stream and
        # therefore uncacheable. Two engines with equal seeds still
        # agree, and different seeds still diverge.
        self._sampler_seed = int(self.rng.integers(2**63))
        self._mcmc_seed = int(self.rng.integers(2**63))
        self._db_fp = fingerprint_records(self.records)
        if copula is None:
            self._copula_token: Optional[str] = None
        else:
            digest = hashlib.blake2b(
                np.ascontiguousarray(
                    copula.correlation, dtype=float
                ).tobytes(),
                digest_size=12,
            )
            self._copula_token = digest.hexdigest()
        # from_table() subscription state: when bound to a table, the
        # engine consumes its mutation deltas (changes_since) and
        # re-extracts records whenever a batch committed, migrating
        # delta-surviving cache artifacts (see _refresh_table).
        self._table: Optional[Any] = None
        self._table_scoring: Any = None
        self._table_payload: Optional[List[str]] = None
        self._table_version: Optional[int] = None
        self._refresh_lock = threading.Lock()
        self._last_migration: Optional[MigrationReport] = None

    # ------------------------------------------------------------------
    # construction from a table
    # ------------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: Any,
        scoring: Any,
        payload_columns: Optional[Sequence[str]] = None,
        **engine_kwargs: Any,
    ) -> "RankingEngine":
        """Build an engine directly over an ``UncertainTable``.

        Extracts records with ``table.to_records(..., validate=True)``
        and *subscribes to the table's mutation deltas*: every committed
        ``table.mutate()`` batch is delivered through
        ``table.changes_since`` at the next query, so answers always
        reflect the live table without hand-wired ``to_records``
        plumbing at every call site — and because the deltas name
        exactly which record keys changed, the engine migrates
        delta-surviving cache artifacts (pairwise integrals, the fitted
        cost model) to the new fingerprint instead of discarding them
        (:meth:`~repro.core.cache.ComputationCache.migrate`).

        Parameters
        ----------
        table:
            An :class:`~repro.db.table.UncertainTable` (duck-typed:
            anything with ``to_records`` and either the
            ``changes_since`` delta API or a legacy ``version``
            counter; the legacy path invalidates wholesale instead of
            migrating).
        scoring:
            The scoring spec forwarded to ``to_records``.
        payload_columns:
            Optional payload columns forwarded to ``to_records``.
        **engine_kwargs:
            Any :class:`RankingEngine` constructor argument
            (``seed=``, ``workers=``, ``trace=``, ...).
        """
        records = table.to_records(
            scoring, payload_columns=payload_columns, validate=True
        )
        engine = cls(records, **engine_kwargs)
        engine._table = table
        engine._table_scoring = scoring
        engine._table_payload = (
            list(payload_columns) if payload_columns is not None else None
        )
        engine._table_version = engine._table_changes(subscribe=True).version
        return engine

    def _table_changes(self, subscribe: bool = False) -> Any:
        """The subscribed table's pending changes (delta API or legacy).

        Returns an object with ``version`` and ``deltas`` — the latter a
        tuple of :class:`~repro.db.table.TableDelta` (possibly empty),
        or ``None`` when the table cannot say *what* changed (legacy
        version counters, or a delta log that no longer reaches back to
        this engine's subscription point).
        """
        table = self._table
        changes_since = getattr(table, "changes_since", None)
        if callable(changes_since):
            return changes_since(None if subscribe else self._table_version)
        version = table.version  # reprolint: disable=CACHE003 -- legacy duck-typed subscription fallback: tables without the delta API only expose the bare counter, and this engine-side shim is the one sanctioned reader
        deltas = (
            () if subscribe or version == self._table_version else None
        )
        return _LegacyChanges(version=version, deltas=deltas)

    def _refresh_table(self) -> None:
        """Re-extract records if the subscribed table has moved on.

        When the table delivers deltas for the gap, cached artifacts
        untouched by them are migrated to the new fingerprint; when it
        cannot (legacy counter, overflowed delta log), the refresh
        falls back to wholesale invalidation — recompute, never a
        wrong answer.
        """
        if self._table is None:
            return
        with self._refresh_lock:
            changes = self._table_changes()
            if changes.version == self._table_version:
                return
            dirty: set = set()
            if changes.deltas is not None:
                for delta in changes.deltas:
                    dirty |= delta.touched
            # Validation is the O(n)-with-a-big-constant part of a
            # refresh. When the delta names exactly which keys moved,
            # records outside it are byte-unchanged since the validated
            # subscription snapshot, so only the dirty ones need
            # re-checking; without deltas, validate wholesale.
            records = self._table.to_records(
                self._table_scoring,
                payload_columns=self._table_payload,
                validate=changes.deltas is None,
            )
            if changes.deltas is not None and dirty:
                touched = [r for r in records if r.record_id in dirty]
                if touched:
                    validate_records(touched, raise_on_issue=True)
            if not records:
                raise QueryError("cannot rank an empty database")
            if self.copula is not None and self.copula.dimension != len(
                records
            ):
                raise QueryError(
                    f"copula dimension {self.copula.dimension} does not "
                    f"match database size {len(records)}"
                )
            old_fp = self._db_fp
            self.records = list(records)
            self._db_fp = fingerprint_records(self.records)
            self._table_version = changes.version
            if self._db_fp == old_fp or changes.deltas is None:
                return
            self._last_migration = self.cache.migrate(
                old_fp, self._db_fp, dirty
            )

    @property
    def table(self) -> Optional[Any]:
        """The subscribed table when built via :meth:`from_table`."""
        return self._table

    @property
    def last_migration(self) -> Optional[MigrationReport]:
        """The most recent delta-aware cache migration, if any."""
        return self._last_migration

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @property
    def database_fingerprint(self) -> str:
        """Content fingerprint of the ranked records (cache identity).

        Stable across engines holding identical records; the serving
        layer keys request coalescing and circuit breakers on it.
        """
        self._refresh_table()
        return self._db_fp

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this engine's queries emit into."""
        return self._metrics

    def sampling_coverage(
        self, samples: int, max_rank: Optional[int] = None
    ) -> int:
        """How many of ``samples`` draws the shared cache already holds.

        A read-only probe against the block-structured rank-count store
        for this database and the engine's default sampling stream. The
        serving layer uses it to skip coalescing when a burst would hit
        warm blocks anyway. ``max_rank`` mirrors the query path's prune
        level: rank counts are keyed by the *pruned* table fingerprint,
        so the probe resolves the same pruned entry the query would.
        """
        self._refresh_table()
        if max_rank is None:
            subset, fp = self.records, self._db_fp
        else:
            subset, fp = self._pruned_entry(int(max_rank))
        n = len(subset)
        limit = n if max_rank is None else max(1, min(int(max_rank), n))
        return self.cache.rank_count_coverage(
            fp, self._backend_key(), samples, limit
        )

    def ppo(self) -> ProbabilisticPartialOrder:
        """The partial order induced by the full database (cached)."""
        return self._ppo(self._db_fp, self.records)

    def _pairwise_cache(self):
        """The per-database Eq. 1 memo shared by exact/MCMC/rank-agg."""
        return self.cache.pairwise(self._db_fp)

    def _ppo(
        self, fp: str, subset: Sequence[UncertainRecord]
    ) -> ProbabilisticPartialOrder:
        def build() -> ProbabilisticPartialOrder:
            with span("pairwise", records=len(subset)):
                return ProbabilisticPartialOrder(
                    subset, cache=self._pairwise_cache()
                )

        return self.cache.artifact("ppo", fp, build)

    def _pruned_entry(
        self, level: int
    ) -> Tuple[List[UncertainRecord], str]:
        """``(pruned records, their fingerprint)`` for a dominance level."""
        if not self.prune or level >= len(self.records):
            return self.records, self._db_fp

        def build() -> Tuple[List[UncertainRecord], str]:
            kept = shrink_database(self.records, level).kept
            return kept, fingerprint_records(kept)

        return self.cache.artifact("prune", (self._db_fp, level), build)

    def _pruned(self, level: int) -> List[UncertainRecord]:
        return self._pruned_entry(level)[0]

    def _plan_for(self, fp: str, subset: Sequence[UncertainRecord]):
        """The compiled sampling plan for ``subset``, by fingerprint."""

        def build():
            with span("plan-compile", records=len(subset)):
                return compile_plan(subset)

        return self.cache.artifact("plan", fp, build)

    def _exact(
        self, fp: str, subset: Sequence[UncertainRecord]
    ) -> ExactEvaluator:
        """The (memoizing) exact evaluator for ``subset``, by fingerprint."""
        return self.cache.artifact("exact", fp, lambda: ExactEvaluator(subset))

    def _stream_seeds(self, seed: Optional[int]) -> Tuple[int, int]:
        """``(sampler root, mcmc root)`` for a per-query seed override.

        ``None`` keeps the engine's constructor-derived streams (the
        cache-addressable default). An explicit override is hashed into
        the same 63-bit space, independently of the constructor seed:
        two engines built with different seeds still agree on a query
        carrying the same ``seed=``, which is what makes per-query
        seeds a cross-engine reproducibility handle.
        """
        if seed is None:
            return self._sampler_seed, self._mcmc_seed
        digest = hashlib.blake2b(
            f"query-seed:{int(seed)}".encode("utf-8"), digest_size=16
        ).digest()
        return (
            int.from_bytes(digest[:8], "big") % (2**63),
            int.from_bytes(digest[8:], "big") % (2**63),
        )

    def _backend_key(self, sampler_seed: Optional[int] = None) -> Tuple:
        """Identity of this engine's sampling stream, minus the workers.

        Keys every sampled artifact together with the database
        fingerprint. Includes the sampler kind (serial vs sharded —
        different stream layouts), the sampler seed (the engine's, or a
        per-query override), the fixed shard count, and the copula, but
        deliberately *not* the worker count: results are
        worker-invariant by contract, so engines that differ only in
        ``workers`` share sampled counts.
        """
        seed = self._sampler_seed if sampler_seed is None else sampler_seed
        base: Tuple = (
            ("mc", seed)
            if self.workers is None
            else ("shard", seed, DEFAULT_SHARDS)
        )
        if self._copula_token is not None:
            base = base + ("copula", self._copula_token)
        return base

    def _effective_backend(self, override: Optional[str] = None) -> str:
        """Resolve the execution backend for one query.

        ``override`` (a per-query ``backend=``) takes precedence over
        the engine knob. ``"auto"`` picks processes only when they can
        pay off: multiple workers, a multi-core host, no copula, and a
        database at least ``PROCESS_CROSSOVER`` records large —
        otherwise shared-memory export and task marshalling cost more
        than the GIL relief buys. An explicit ``"process"`` under a
        copula is refused (correlated evaluators are closures).
        """
        backend = self.backend if override is None else override
        if backend == "process" and self.copula is not None:
            raise QueryError(
                "backend='process' is unavailable with a copula: "
                "correlated evaluators cannot cross a process boundary"
            )
        if backend == "auto":
            backend = (
                "process"
                if self.copula is None
                and self.workers is not None
                and self.workers > 1
                and (os.cpu_count() or 1) > 1
                and len(self.records) >= PROCESS_CROSSOVER
                else "thread"
            )
        return backend

    def _mcmc_call_seed(
        self,
        target: str,
        k: int,
        l: int,
        mcmc_seed: Optional[int] = None,
    ) -> int:
        """Deterministic per-query MCMC seed (stable across repeats)."""
        root = self._mcmc_seed if mcmc_seed is None else mcmc_seed
        token = (
            f"{root}:{target}:{k}:{l}:"
            f"{self.mcmc_chains}:{self.mcmc_steps}"
        )
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def _sampler_factory(
        self, subset: Sequence[UncertainRecord], plan
    ) -> Callable[[int], MonteCarloEvaluator]:
        """Seed-to-evaluator constructor over ``subset``, honoring the copula.

        A Gaussian copula marginalizes to any record subset by taking
        the corresponding correlation submatrix, so pruned databases
        keep exactly the joint distribution of the surviving records.
        The factory form lets :class:`ParallelSampler` build one
        copula-aware evaluator per shard; ``plan`` is the shared
        compiled sampling plan for ``subset``.
        """
        if self.copula is None:
            return lambda s: MonteCarloEvaluator(subset, seed=s, plan=plan)
        from .correlation import CorrelatedMonteCarloEvaluator, GaussianCopula

        wanted = {rec.record_id for rec in subset}
        idx = [
            i
            for i, rec in enumerate(self.records)
            if rec.record_id in wanted
        ]
        sub = self.copula.correlation[np.ix_(idx, idx)]
        return lambda s: CorrelatedMonteCarloEvaluator(
            subset, GaussianCopula(sub), seed=s, plan=plan
        )

    def _sampler(
        self,
        subset: Sequence[UncertainRecord],
        fp: str,
        sampler_seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> Union[MonteCarloEvaluator, ParallelSampler]:
        """Monte-Carlo front-end over ``subset``, cached by fingerprint.

        With ``workers=None`` this is a single evaluator; otherwise a
        sharded :class:`ParallelSampler` whose results are worker-count
        and backend invariant. The evaluator object is keyed by the
        worker count and backend too (a sampler built for one pool
        shape should not decide another engine's parallelism), but the
        *counts* it produces are keyed by :meth:`_backend_key` alone
        and therefore shared.

        Without a copula the sampler receives the compiled plan
        directly (``plan=``), which keeps the process backend available;
        a copula needs per-shard correlated evaluators, so it passes a
        closure factory and stays on threads (enforced upstream by
        :meth:`_effective_backend`).
        """
        seed = self._sampler_seed if sampler_seed is None else sampler_seed
        effective = (
            self._effective_backend(None) if backend is None else backend
        )

        def build() -> Union[MonteCarloEvaluator, ParallelSampler]:
            plan = self._plan_for(fp, subset)
            if self.workers is None:
                return self._sampler_factory(subset, plan)(seed)
            if self.copula is not None:
                sampler = ParallelSampler(
                    subset,
                    seed=seed,
                    workers=self.workers,
                    factory=self._sampler_factory(subset, plan),
                )
            else:
                sampler = ParallelSampler(
                    subset,
                    seed=seed,
                    workers=self.workers,
                    plan=plan,
                    backend=effective,
                )
            self._owned_samplers.append(sampler)  # reprolint: disable=CON001 -- samplers are only built on the query thread (cache builds run inline); worker pools never construct samplers
            return sampler

        return self.cache.artifact(
            "sampler",
            (fp, self._backend_key(sampler_seed), self.workers, effective),
            build,
        )

    def _rank_counts(
        self,
        fp: str,
        sampler: Union[MonteCarloEvaluator, ParallelSampler],
        samples: int,
        max_rank: Optional[int] = None,
        budget: Optional[Budget] = None,
        sampler_seed: Optional[int] = None,
    ):
        """Memoized rank counts with deterministic top-up (see cache)."""
        return self.cache.rank_counts(
            fp,
            self._backend_key(sampler_seed),
            sampler,
            samples,
            max_rank=max_rank,
            budget=budget,
        )

    def _guard_copula(self, method: str) -> str:
        """Map/refuse methods that assume independence under a copula."""
        if self.copula is None:
            return method
        if method == "auto":
            return "montecarlo"
        if method in ("exact", "mcmc"):
            raise QueryError(
                f"method {method!r} assumes independent scores and is "
                "invalid when a copula is set; use 'montecarlo'"
            )
        return method

    def _effective_budget(self, budget: Optional[Budget]) -> Optional[Budget]:
        """Per-query budget override, falling back to the engine default."""
        return budget if budget is not None else self.budget

    def cache_stats(self) -> CacheStats:
        """Live counters of this engine's computation cache.

        Hits, misses, LRU evictions, retained bytes, and top-up
        extensions (rank-count requests partially served from cached
        sample blocks). For a ``"shared"`` cache the counters cover all
        participating engines.
        """
        return self.cache.stats()

    def _cache_delta(self, before: CacheStats) -> dict:
        """Counter increments since ``before``, for per-query reporting."""
        return self.cache.stats().delta(before).to_dict()

    def _median_ranking(
        self, subset: Sequence[UncertainRecord]
    ) -> List[UncertainRecord]:
        """Deterministic ranking by median score (the degradation floor).

        Collapses each record's score distribution to its median
        (``ppf(0.5)``; the point value for deterministic records) and
        sorts descending with the record-id tie-breaker. A quantile
        that fails with :class:`EvaluationError` — or comes back
        non-finite — falls back to the interval midpoint with a logged
        warning, so the floor stays available for any record that
        passed model validation; genuinely unexpected errors propagate
        instead of being silently swallowed.
        """

        def median(rec: UncertainRecord) -> float:
            if rec.is_deterministic:
                return rec.lower
            try:
                value = float(rec.score.ppf(0.5))
            except EvaluationError as exc:
                logger.warning(
                    "median of record %r failed (%s: %s); using the "
                    "interval midpoint",
                    rec.record_id,
                    type(exc).__name__,
                    exc,
                )
                return 0.5 * (rec.lower + rec.upper)
            if not math.isfinite(value):
                return 0.5 * (rec.lower + rec.upper)
            return value

        return sorted(
            subset, key=lambda rec: (-median(rec), rec.record_id)
        )

    def _run_stages(
        self,
        stages: Sequence[Tuple[str, Callable[[], List]]],
        budget: Optional[Budget],
        events: List[DegradationEvent],
        timings: Optional[Dict[str, float]] = None,
    ) -> Tuple[str, List]:
        """Drive the degradation ladder over ``stages`` in order.

        Each stage is a ``(name, thunk)`` pair; the first thunk that
        returns supplies the answers. A stage that raises
        :class:`EvaluationError` (or declines via ``_StageSkipped``) is
        recorded as a :class:`DegradationEvent` and the ladder falls
        through to the next rung — unless it is the *only* stage
        (an explicitly requested method), in which case the error
        propagates unchanged. Expensive stages are skipped outright
        when the budget is already expired; the baseline rung is free
        and always allowed to run. Each attempted stage runs under a
        child span named after it, so traces show degraded attempts
        alongside the rung that finally answered. ``timings``, when
        given, collects per-attempt wall seconds (degraded attempts
        included) — the planner's cost-model feedback loop.
        """

        def attempt(name: str, thunk: Callable[[], List]) -> List:
            with span(name) as stage_span:
                started = time.perf_counter()
                try:
                    answers = thunk()
                except EvaluationError:
                    if timings is not None:
                        timings[name] = time.perf_counter() - started
                    if stage_span is not None:
                        stage_span.set(outcome="degraded")
                    raise
                if timings is not None:
                    timings[name] = time.perf_counter() - started
                if stage_span is not None:
                    stage_span.set(outcome="ok")
                return answers

        total = len(stages)
        last_error: Optional[EvaluationError] = None
        for index, (name, thunk) in enumerate(stages):
            if (
                budget is not None
                and name != "baseline"
                and budget.expired()
            ):
                reason = budget.exhausted_reason() or "deadline"
                events.append(DegradationEvent(name, "skipped", reason))
                last_error = EvaluationError(
                    f"budget exhausted before the {name} stage ({reason})"
                )
                continue
            try:
                answers = attempt(name, thunk)
            except _StageSkipped as skip:
                events.append(DegradationEvent(name, "skipped", str(skip)))
                last_error = skip
                continue
            except EvaluationError as exc:
                if total == 1:
                    raise
                events.append(
                    DegradationEvent(
                        name, "failed", f"{type(exc).__name__}: {exc}"
                    )
                )
                last_error = exc
                continue
            if index > 0:
                events.append(
                    DegradationEvent(
                        name, "fallback", "earlier stages degraded"
                    )
                )
            return name, answers
        if last_error is not None:
            raise last_error
        raise EvaluationError("no evaluation stage available")

    # ------------------------------------------------------------------
    # cost-model planning
    # ------------------------------------------------------------------

    def _overlap_density(
        self, fp: str, subset: Sequence[UncertainRecord]
    ) -> float:
        """Cached interval-overlap density for a pruned subset."""
        return self.cache.artifact(
            "overlap", fp, lambda: overlap_density(subset)
        )

    def _plan_features(
        self,
        kind: str,
        fp: str,
        pruned: Sequence[UncertainRecord],
        depth: int,
        requested: int,
        ctx: _EvalContext,
    ) -> PlanFeatures:
        """The deterministic feature vector the planner consults.

        Pure function of (records, spec, cache state): size and overlap
        density of the pruned subset, requested depth and samples,
        rank-count cache coverage for the query's own sampling stream,
        and — for the prefix/set families — the (capped) enumeration
        space and MCMC parameters.
        """
        n = len(pruned)
        covered = 0
        prefix_space: Optional[int] = None
        if kind == "utop_rank":
            limit = max(1, min(depth, n))
            covered = self.cache.rank_count_coverage(
                fp,
                self._backend_key(ctx.sampler_seed),
                requested,
                limit,
            )
        else:
            prefix_space = self._prefix_space(fp, pruned, depth)
        return PlanFeatures(
            kind=kind,
            n=n,
            depth=depth,
            requested_samples=requested,
            covered_samples=covered,
            overlap_density=self._overlap_density(fp, pruned),
            exact_supported=supports_exact(pruned),
            prefix_space=prefix_space,
            mcmc_chains=self.mcmc_chains if kind != "utop_rank" else 0,
            mcmc_steps=self.mcmc_steps if kind != "utop_rank" else 0,
        )

    def _apply_plan(
        self,
        ctx: _EvalContext,
        kind: str,
        stages: List[Tuple[str, Callable[[], List]]],
        fp: str,
        pruned: Sequence[UncertainRecord],
        depth: int,
        requested: int,
    ) -> List[Tuple[str, Callable[[], List]]]:
        """Consult the planner for an ``auto`` ladder; prune if budgeted.

        With no planner (disabled) or a non-auto method the ladder is
        returned untouched. Otherwise the plan is recorded on the
        context for post-run feedback; without a live budget that is
        all that happens — execution is byte-identical to planner-off.
        Under a live budget, stages the plan marked ``skipped`` are
        removed before :meth:`_run_stages` ever starts them, each
        recorded as a ``planner:``-reasoned skip event, and a
        covered-block sample reduction (if any) is staged via
        ``ctx.plan_samples``.
        """
        if self.planner is None or ctx.method != "auto" or not stages:
            return stages
        model = self.cache.cost_model(fp)
        features = self._plan_features(
            kind, fp, pruned, depth, requested, ctx
        )
        plan = self.planner.plan(
            model, features, [name for name, _ in stages], ctx.budget
        )
        ctx.plan = plan
        ctx.plan_model = model
        if not plan.budgeted:
            return stages
        ctx.plan_samples = plan.planned_samples
        kept: List[Tuple[str, Callable[[], List]]] = []
        for name, thunk in stages:
            entry = plan.stage_named(name)
            if entry is not None and entry.decision == "skipped":
                ctx.events.append(
                    DegradationEvent(
                        name, "skipped", f"planner: {entry.reason}"
                    )
                )
                continue
            kept.append((name, thunk))
        return kept

    # ------------------------------------------------------------------
    # the query dispatcher
    # ------------------------------------------------------------------

    #: kind -> bound evaluator method name (one entry per QUERY_KINDS).
    _EVAL: Dict[str, str] = {
        "utop_rank": "_eval_utop_rank",
        "utop_prefix": "_eval_utop_prefix",
        "utop_set": "_eval_utop_set",
        "rank_aggregation": "_eval_rank_aggregation",
        "threshold_topk": "_eval_threshold_topk",
    }

    def query(self, spec: Query) -> QueryResult:
        """Evaluate one frozen :class:`Query` spec.

        The single dispatch point every query family funnels through:
        it refreshes a subscribed table, resolves the per-query seed
        and budget, opens the root trace span (honoring the engine's
        ``trace`` default and the spec's override), installs this
        engine's metrics registry for every emission point below, runs
        the evaluator for ``spec.kind``, and folds the bookkeeping —
        elapsed time, cache delta, degradation events, diagnostics,
        the span tree — into one keyword-constructed
        :class:`QueryResult`.
        """
        evaluator_name = self._EVAL.get(spec.kind)
        if evaluator_name is None:
            raise QueryError(f"unknown query kind {spec.kind!r}")
        self._refresh_table()
        start = time.perf_counter()
        stats_before = self.cache.stats()
        sampler_seed, mcmc_seed = self._stream_seeds(spec.seed)
        ctx = _EvalContext(
            budget=self._effective_budget(spec.budget),
            method=self._guard_copula(spec.method),
            sampler_seed=sampler_seed,
            mcmc_seed=mcmc_seed,
            backend=self._effective_backend(spec.backend),
        )
        enabled = self.trace if spec.trace is None else spec.trace
        root: Optional[Span] = (
            Span(
                "query",
                kind=spec.kind,
                method=ctx.method,
                database_size=len(self.records),
            )
            if enabled
            else None
        )
        evaluate = getattr(self, evaluator_name)
        try:
            with use_registry(self._metrics):
                with activate(root):
                    answers = evaluate(spec, ctx)
        except Exception as exc:
            if root is not None:
                root.end()
            self._metrics.inc("query_errors_total", query=spec.kind)
            logger.debug(
                "query %s failed (%s: %s)",
                spec.kind,
                type(exc).__name__,
                exc,
            )
            raise
        if root is not None:
            root.set(method_used=ctx.used, pruned_size=ctx.pruned_size)
            root.end()
        elapsed = time.perf_counter() - start
        self._finish_plan(spec, ctx)
        self._metrics.inc("queries_total", query=spec.kind, method=ctx.used)
        self._metrics.observe(
            "query_duration_seconds",
            elapsed,
            query=spec.kind,
            method=ctx.used,
        )
        for event in ctx.events:
            self._metrics.inc(
                "degradation_events_total",
                stage=event.stage,
                action=event.action,
            )
        return QueryResult(
            answers=answers,
            method=ctx.used,
            elapsed=elapsed,
            database_size=len(self.records),
            pruned_size=ctx.pruned_size,
            error_bound=ctx.error_bound,
            diagnostics=ctx.diagnostics,
            partial=ctx.partial,
            truncated=ctx.truncated,
            confidence_half_width=ctx.half_width,
            degradation=ctx.events,
            cache=self._cache_delta(stats_before),
            trace=root,
        )

    def _finish_plan(self, spec: Query, ctx: _EvalContext) -> None:
        """Close the planning loop for one query (no-op when unplanned).

        Feeds measured stage timings back into the fingerprint's cost
        model, emits the ``planner_*`` counters, and attaches the
        schedule-invariant plan block to the result diagnostics. Runs
        after the evaluator so it survives evaluators that replace
        ``ctx.diagnostics`` wholesale (the MCMC paths do).
        """
        plan = ctx.plan
        if plan is None or self.planner is None or ctx.plan_model is None:
            return
        mispredicted = self.planner.feedback(
            ctx.plan_model, plan, ctx.stage_seconds, ctx.used
        )
        self._metrics.inc(
            "planner_plans_total",
            query=spec.kind,
            budgeted=str(plan.budgeted).lower(),
        )
        for entry in plan.stages:
            if entry.decision == "skipped":
                self._metrics.inc(
                    "planner_stage_skips_total", stage=entry.stage
                )
        if mispredicted:
            self._metrics.inc(
                "planner_mispredictions_total", query=spec.kind
            )
        if plan.planned_samples is not None:
            self._metrics.inc(
                "planner_sample_reductions_total", query=spec.kind
            )
        ctx.diagnostics["plan"] = plan.diagnostics_dict()

    # ------------------------------------------------------------------
    # RECORD-RANK queries (Def. 4)
    # ------------------------------------------------------------------

    def utop_rank(
        self,
        i: int,
        j: int,
        l: int = 1,
        method: str = "auto",
        samples: Optional[int] = None,
        budget: Optional[Budget] = None,
        seed: Optional[int] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """Evaluate l-UTop-Rank(i, j).

        ``method`` is ``"auto"``, ``"exact"``, ``"montecarlo"``, or
        ``"baseline"`` (the median-score collapse). Under ``"auto"``
        with a resource ``budget``, evaluation degrades along
        exact → Monte-Carlo → baseline instead of raising; the result
        records the ladder steps taken, carries ``partial=True`` for
        clipped Monte-Carlo estimates, and reports a Wilson confidence
        half-width for the top answer of a partial estimate. ``seed``
        overrides the engine's sampling streams for this query only;
        ``trace`` overrides the engine's tracing default.
        """
        return self.query(
            Query(
                kind="utop_rank",
                i=i,
                j=j,
                l=l,
                method=method,
                samples=samples,
                budget=budget,
                seed=seed,
                trace=trace,
                backend=backend,
            )
        )

    def _eval_utop_rank(
        self, spec: Query, ctx: _EvalContext
    ) -> List[RecordAnswer]:
        i, j, l = spec.i, spec.j, spec.l
        budget = ctx.budget
        with span("prune", level=j):
            pruned, fp = self._pruned_entry(j)
        ctx.pruned_size = len(pruned)
        requested = spec.samples or self.samples

        def run_exact() -> List[RecordAnswer]:
            evaluator = self._exact(fp, pruned)
            with span("dp", records=len(pruned), max_rank=j):
                matrix = evaluator.rank_probability_matrix(
                    max_rank=j, budget=budget
                )
            with span("aggregate"):
                probs = matrix[:, i - 1 : j].sum(axis=1)
                order = sorted(
                    range(len(pruned)),
                    key=lambda t: (-probs[t], pruned[t].record_id),
                )
                return [
                    RecordAnswer(pruned[t].record_id, float(probs[t]))
                    for t in order[:l]
                ]

        def run_montecarlo() -> List[RecordAnswer]:
            sampler = self._sampler(pruned, fp, ctx.sampler_seed, ctx.backend)
            # A budgeted plan may serve straight from a covered
            # rank-count block at its (smaller) sample count instead of
            # drawing a fresh top-up; the result is flagged partial
            # below, exactly like a budget-clipped run of that count.
            effective = requested
            if (
                ctx.plan_samples is not None
                and ctx.plan_samples < requested
            ):
                effective = ctx.plan_samples
            # The cache — not the shards — takes the sample grant for
            # whatever cached blocks cannot cover, so the number of
            # fresh samples drawn is a pure function of budget state
            # and cache contents, never of shard scheduling (the
            # determinism-under-budget contract).
            with span("sample", requested=effective) as sample_span:
                sc = self._rank_counts(
                    fp,
                    sampler,
                    effective,
                    max_rank=j,
                    budget=budget,
                    sampler_seed=ctx.sampler_seed,
                )
                if sample_span is not None:
                    sample_span.set(done=sc.done)
            if sc.done == 0:
                raise _StageSkipped(
                    "sample budget exhausted "
                    f"({sc.reason or 'samples'})"
                )
            with span("aggregate"):
                matrix = sc.counts / sc.done
                pairs = select_top_rank_candidates(pruned, matrix, i, j, l)
            if sc.partial:
                ctx.partial = True
                ctx.events.append(
                    DegradationEvent(
                        "montecarlo",
                        "clipped",
                        sc.reason
                        or f"sample cap granted {sc.done}/{effective}",
                    )
                )
                if pairs:
                    ctx.half_width = wilson_half_width(pairs[0][1], sc.done)
            elif effective < requested:
                ctx.partial = True
                ctx.events.append(
                    DegradationEvent(
                        "montecarlo",
                        "clipped",
                        "planner served covered block "
                        f"{sc.done}/{requested}",
                    )
                )
                if pairs:
                    ctx.half_width = wilson_half_width(pairs[0][1], sc.done)
            return [
                RecordAnswer(rec.record_id, prob) for rec, prob in pairs
            ]

        def run_baseline() -> List[RecordAnswer]:
            order = self._median_ranking(pruned)
            probs = {
                rec.record_id: 1.0 if i <= rank <= j else 0.0
                for rank, rec in enumerate(order, start=1)
            }
            ranked = sorted(
                pruned,
                key=lambda rec: (-probs[rec.record_id], rec.record_id),
            )
            return [
                RecordAnswer(rec.record_id, probs[rec.record_id])
                for rec in ranked[:l]
            ]

        method = ctx.method
        if method == "auto":
            stages: List[Tuple[str, Callable[[], List]]] = []
            if (
                supports_exact(pruned)
                and len(pruned) <= self.exact_record_limit
            ):
                stages.append(("exact", run_exact))
            stages.append(("montecarlo", run_montecarlo))
            stages.append(("baseline", run_baseline))
            stages = self._apply_plan(
                ctx, "utop_rank", stages, fp, pruned, j, requested
            )
        elif method == "exact":
            stages = [("exact", run_exact)]
        elif method == "montecarlo":
            stages = [("montecarlo", run_montecarlo)]
        elif method == "baseline":
            stages = [("baseline", run_baseline)]
        else:
            raise QueryError(f"unknown method {method!r} for UTop-Rank")
        used, answers = self._run_stages(
            stages, budget, ctx.events, timings=ctx.stage_seconds
        )
        ctx.used = used
        return answers

    def rank_distribution(
        self,
        record_id: str,
        max_rank: Optional[int] = None,
        method: str = "auto",
        samples: Optional[int] = None,
    ) -> np.ndarray:
        """Full rank distribution ``eta_r(t)`` of one record.

        Returns a vector of length ``max_rank`` (default: the database
        size) whose ``r``-th entry is the probability that the record
        occupies rank ``r + 1`` across linear extensions. Exact when the
        densities allow it and the database is small; Monte-Carlo
        otherwise.
        """
        self._refresh_table()
        if all(rec.record_id != record_id for rec in self.records):
            raise QueryError(f"record {record_id!r} is not in this database")
        method = self._guard_copula(method)
        if method == "auto":
            use_exact = (
                supports_exact(self.records)
                and len(self.records) <= self.exact_record_limit
            )
            method = "exact" if use_exact else "montecarlo"
        if method == "exact":
            return self._exact(self._db_fp, self.records).rank_probabilities(
                record_id, max_rank=max_rank
            )
        if method != "montecarlo":
            raise QueryError(f"unknown method {method!r}")
        with use_registry(self._metrics):
            sampler = self._sampler(self.records, self._db_fp)
            sc = self._rank_counts(
                self._db_fp,
                sampler,
                samples or self.samples,
                max_rank=max_rank,
            )
        matrix = sc.counts / sc.done
        index = next(
            i
            for i, rec in enumerate(self.records)
            if rec.record_id == record_id
        )
        return matrix[index]

    # ------------------------------------------------------------------
    # related-work semantics expressed in the paper's model
    # ------------------------------------------------------------------

    def global_topk(
        self,
        k: int,
        method: str = "auto",
        budget: Optional[Budget] = None,
        seed: Optional[int] = None,
        trace: Optional[bool] = None,
    ) -> QueryResult:
        """Global-Top-k semantics under score uncertainty.

        The analog of Zhang & Chomicki's Global-Top-k [16] in the
        paper's model: the ``k`` records with the highest probability of
        ranking in the top ``k`` — exactly ``k``-UTop-Rank(1, k).
        """
        if k < 1:
            raise QueryError("k must be positive")
        return self.utop_rank(
            1, k, l=k, method=method, budget=budget, seed=seed, trace=trace
        )

    def threshold_topk(
        self,
        k: int,
        threshold: float,
        method: str = "auto",
        budget: Optional[Budget] = None,
        seed: Optional[int] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """PT-k semantics under score uncertainty (Hua et al. [17]).

        All records whose probability of ranking in the top ``k``
        reaches ``threshold``; the answer size is data-dependent
        (possibly empty, possibly larger than ``k``).
        """
        return self.query(
            Query(
                kind="threshold_topk",
                k=k,
                threshold=threshold,
                method=method,
                budget=budget,
                seed=seed,
                trace=trace,
                backend=backend,
            )
        )

    def _eval_threshold_topk(
        self, spec: Query, ctx: _EvalContext
    ) -> List[RecordAnswer]:
        inner = Query(
            kind="utop_rank",
            i=1,
            j=spec.k,
            l=len(self.records),
            method=spec.method,
            samples=spec.samples,
        )
        answers = self._eval_utop_rank(inner, ctx)
        return [
            answer
            for answer in answers
            if answer.probability >= spec.threshold
        ]

    # ------------------------------------------------------------------
    # TOP-k queries (Defs. 5 and 6)
    # ------------------------------------------------------------------

    def _prefix_space(
        self, fp: str, subset: Sequence[UncertainRecord], k: int
    ) -> Optional[int]:
        """Cached ``count_prefixes`` over the (cached) partial order.

        ``None`` means the space exceeds the counting cap — cached too,
        so an uncountably large order is not re-walked on every query.
        """

        def build() -> Optional[int]:
            try:
                return count_prefixes(
                    self._ppo(fp, subset), k, max_states=200_000
                )
            except EvaluationError:
                return None

        return self.cache.artifact("prefix-space", (fp, k), build)

    def _enumerable(
        self, pruned: Sequence[UncertainRecord], fp: str, k: int
    ) -> bool:
        if not supports_exact(pruned):
            return False
        space = self._prefix_space(fp, pruned, k)
        return space is not None and space <= self.prefix_enumeration_limit

    def _exact_prefixes(
        self, fp: str, subset: Sequence[UncertainRecord], k: int
    ) -> Tuple[List[Tuple[Tuple[str, ...], float]], bool]:
        """Scored k-prefixes, best-first, plus an enumeration-cap flag.

        The unbudgeted exact TOP-k computation in one cacheable piece:
        independent of ``l`` (answers are a slice of the sorted list),
        so one enumeration serves every follow-up ``l``.
        """
        evaluator = self._exact(fp, subset)
        ppo = self._ppo(fp, subset)
        scored: List[Tuple[Tuple[str, ...], float]] = []
        clipped = False
        with span("enumerate", k=k) as enum_span:
            for prefix in enumerate_prefixes(ppo, k):
                if len(scored) >= self.prefix_enumeration_limit:
                    clipped = True
                    break
                scored.append(
                    (
                        tuple(rec.record_id for rec in prefix),
                        evaluator.prefix_probability(prefix),
                    )
                )
            if enum_span is not None:
                enum_span.set(enumerated=len(scored), clipped=clipped)
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored, clipped

    def _exact_sets(
        self, fp: str, subset: Sequence[UncertainRecord], k: int
    ) -> Tuple[List[Tuple[frozenset, float]], bool]:
        """Scored top-k sets, best-first, plus an enumeration-cap flag."""
        evaluator = self._exact(fp, subset)
        ppo = self._ppo(fp, subset)
        candidate_sets = set()
        clipped = False
        with span("enumerate", k=k) as enum_span:
            for prefix in enumerate_prefixes(ppo, k):
                if len(candidate_sets) >= self.prefix_enumeration_limit:
                    clipped = True
                    break
                candidate_sets.add(
                    frozenset(rec.record_id for rec in prefix)
                )
            if enum_span is not None:
                enum_span.set(
                    enumerated=len(candidate_sets), clipped=clipped
                )
        scored = [
            (members, evaluator.top_set_probability(members))
            for members in candidate_sets
        ]
        scored.sort(key=lambda kv: (-kv[1], sorted(kv[0])))
        return scored, clipped

    def utop_prefix(
        self,
        k: int,
        l: int = 1,
        method: str = "auto",
        budget: Optional[Budget] = None,
        seed: Optional[int] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """Evaluate l-UTop-Prefix(k).

        ``method``: ``"auto"``, ``"exact"`` (enumerate + integrate),
        ``"mcmc"`` (multi-chain simulation), ``"montecarlo"``
        (empirical frequencies over sampled rankings), or ``"baseline"``
        (median-score collapse). Under ``"auto"`` the ladder is
        exact → MCMC → Monte-Carlo → baseline; a clipped enumeration
        marks the result ``truncated=True``, and budget-stopped stages
        return best-so-far answers with ``partial=True``.
        """
        return self.query(
            Query(
                kind="utop_prefix",
                k=k,
                l=l,
                method=method,
                budget=budget,
                seed=seed,
                trace=trace,
                backend=backend,
            )
        )

    def _eval_utop_prefix(
        self, spec: Query, ctx: _EvalContext
    ) -> List[PrefixAnswer]:
        k, l = spec.k, spec.l
        budget = ctx.budget
        with span("prune", level=k):
            pruned, fp = self._pruned_entry(k)
        ctx.pruned_size = len(pruned)
        k_eff = min(k, len(pruned))
        base_samples = spec.samples or self.samples

        def run_exact() -> List[PrefixAnswer]:
            if budget is None:
                scored, clipped = self.cache.artifact(
                    "exact-prefix",
                    (fp, k_eff, self.prefix_enumeration_limit),
                    lambda: self._exact_prefixes(fp, pruned, k_eff),
                )
                if clipped:
                    # Another prefix exists beyond the cap: the answer
                    # space was clipped, and the best prefix may be
                    # outside the enumerated region.
                    ctx.truncated = True
                    ctx.events.append(
                        DegradationEvent(
                            "exact",
                            "clipped",
                            f"enumeration cap "
                            f"{self.prefix_enumeration_limit} reached",
                        )
                    )
                return [PrefixAnswer(p, prob) for p, prob in scored[:l]]
            # Budgeted enumeration is driven (and charged) live — a
            # budget-truncated answer set must never be cached, and the
            # cache must not silently bypass the enumeration meter.
            evaluator = self._exact(fp, pruned)
            ppo = self._ppo(fp, pruned)
            scored: List[Tuple[Tuple[str, ...], float]] = []
            with span("enumerate", k=k_eff, budgeted=True):
                for prefix in enumerate_prefixes(ppo, k_eff):
                    if len(scored) >= self.prefix_enumeration_limit:
                        ctx.truncated = True
                        ctx.events.append(
                            DegradationEvent(
                                "exact",
                                "clipped",
                                f"enumeration cap "
                                f"{self.prefix_enumeration_limit} reached",
                            )
                        )
                        break
                    if not budget.consume_enumeration():
                        ctx.truncated = True
                        ctx.partial = True
                        ctx.events.append(
                            DegradationEvent(
                                "exact",
                                "clipped",
                                budget.exhausted_reason() or "enumeration",
                            )
                        )
                        break
                    scored.append(
                        (
                            tuple(rec.record_id for rec in prefix),
                            evaluator.prefix_probability(prefix),
                        )
                    )
            if not scored:
                raise _StageSkipped(
                    "budget exhausted before any prefix was enumerated"
                )
            scored.sort(key=lambda kv: (-kv[1], kv[0]))
            return [PrefixAnswer(p, prob) for p, prob in scored[:l]]

        def run_mcmc() -> List[PrefixAnswer]:
            sampler = self._sampler(pruned, fp, ctx.sampler_seed, ctx.backend)
            matrix_samples = max(2000, base_samples // 5)
            rank_matrix: Optional[np.ndarray] = None
            with span("sample", requested=matrix_samples) as sample_span:
                sc = self._rank_counts(
                    fp,
                    sampler,
                    matrix_samples,
                    max_rank=k_eff,
                    budget=budget,
                    sampler_seed=ctx.sampler_seed,
                )
                if sample_span is not None:
                    sample_span.set(done=sc.done)
            if sc.done > 0:
                rank_matrix = sc.counts / sc.done

            def simulate():
                with span(
                    "walk", chains=self.mcmc_chains, target="prefix"
                ):
                    sim = TopKSimulation(
                        pruned,
                        k_eff,
                        target="prefix",
                        n_chains=self.mcmc_chains,
                        seed=self._mcmc_call_seed(
                            "prefix", k_eff, l, ctx.mcmc_seed
                        ),
                        workers=self.workers,
                        plan=self._plan_for(fp, pruned),
                        pairwise_cache=self._pairwise_cache(),
                        backend=ctx.backend,
                    )
                    return sim.run(
                        max_steps=self.mcmc_steps,
                        psrf_threshold=self.psrf_threshold,
                        top_l=l,
                        rank_matrix=rank_matrix,
                        budget=budget,
                    )

            if budget is None:
                result = self.cache.artifact(
                    "mcmc",
                    (
                        fp,
                        self._backend_key(ctx.sampler_seed),
                        "prefix",
                        k_eff,
                        l,
                        matrix_samples,
                        self.mcmc_chains,
                        self.mcmc_steps,
                        self.psrf_threshold,
                        ctx.mcmc_seed,
                    ),
                    simulate,
                )
            else:
                # A budgeted walk reflects *this* query's budget state;
                # neither read nor write the cache for it.
                result = simulate()
            if result.partial:
                ctx.partial = True
                ctx.events.append(
                    DegradationEvent(
                        "mcmc", "clipped", result.stop_reason or "deadline"
                    )
                )
            ctx.error_bound = result.error_estimate
            ctx.diagnostics = {
                "converged": result.converged,
                "total_steps": result.total_steps,
                "acceptance_rate": result.acceptance_rate,
                "states_visited": result.states_visited,
                "psrf": result.trace.psrf[-1] if result.trace.psrf else None,
            }
            return [
                PrefixAnswer(tuple(key), prob)
                for key, prob in result.answers
            ]

        def run_montecarlo() -> List[PrefixAnswer]:
            sampler = self._sampler(pruned, fp, ctx.sampler_seed, ctx.backend)
            requested = base_samples
            denom = requested
            with span("sample", requested=requested):
                if budget is not None:
                    grant = budget.take_samples(requested)
                    if grant == 0:
                        raise _StageSkipped(
                            "sample budget exhausted "
                            f"({budget.exhausted_reason() or 'samples'})"
                        )
                    if grant < requested:
                        ctx.partial = True
                        ctx.events.append(
                            DegradationEvent(
                                "montecarlo",
                                "clipped",
                                f"sample cap granted {grant}/{requested}",
                            )
                        )
                    denom = grant
                    freq = sampler.empirical_top_prefixes(
                        k_eff, denom, seed=0
                    )
                else:
                    freq = self.cache.artifact(
                        "empirical-prefix",
                        (fp, self._backend_key(ctx.sampler_seed), k_eff, denom),
                        lambda: sampler.empirical_top_prefixes(
                            k_eff, denom, seed=0
                        ),
                    )
            with span("aggregate"):
                ranked = sorted(
                    freq.items(), key=lambda kv: (-kv[1], kv[0])
                )
            if ctx.partial and ranked:
                ctx.half_width = wilson_half_width(ranked[0][1], denom)
            return [PrefixAnswer(p, prob) for p, prob in ranked[:l]]

        def run_baseline() -> List[PrefixAnswer]:
            order = self._median_ranking(pruned)
            prefix = tuple(rec.record_id for rec in order[:k_eff])
            # Probability 1.0 under the median-collapsed (deterministic)
            # database — the method label marks the fidelity loss.
            return [PrefixAnswer(prefix, 1.0)]

        method = ctx.method
        if method == "auto":
            stages: List[Tuple[str, Callable[[], List]]] = []
            if self._enumerable(pruned, fp, k_eff):
                stages.append(("exact", run_exact))
            stages.append(("mcmc", run_mcmc))
            stages.append(("montecarlo", run_montecarlo))
            stages.append(("baseline", run_baseline))
            stages = self._apply_plan(
                ctx, "utop_prefix", stages, fp, pruned, k_eff, base_samples
            )
        elif method == "exact":
            stages = [("exact", run_exact)]
        elif method == "mcmc":
            stages = [("mcmc", run_mcmc)]
        elif method == "montecarlo":
            stages = [("montecarlo", run_montecarlo)]
        elif method == "baseline":
            stages = [("baseline", run_baseline)]
        else:
            raise QueryError(f"unknown method {method!r} for UTop-Prefix")
        used, answers = self._run_stages(
            stages, budget, ctx.events, timings=ctx.stage_seconds
        )
        ctx.used = used
        return answers

    def utop_set(
        self,
        k: int,
        l: int = 1,
        method: str = "auto",
        budget: Optional[Budget] = None,
        seed: Optional[int] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """Evaluate l-UTop-Set(k); methods and ladder as in :meth:`utop_prefix`."""
        return self.query(
            Query(
                kind="utop_set",
                k=k,
                l=l,
                method=method,
                budget=budget,
                seed=seed,
                trace=trace,
                backend=backend,
            )
        )

    def _eval_utop_set(
        self, spec: Query, ctx: _EvalContext
    ) -> List[SetAnswer]:
        k, l = spec.k, spec.l
        budget = ctx.budget
        with span("prune", level=k):
            pruned, fp = self._pruned_entry(k)
        ctx.pruned_size = len(pruned)
        k_eff = min(k, len(pruned))
        base_samples = spec.samples or self.samples

        def run_exact() -> List[SetAnswer]:
            if budget is None:
                scored, clipped = self.cache.artifact(
                    "exact-set",
                    (fp, k_eff, self.prefix_enumeration_limit),
                    lambda: self._exact_sets(fp, pruned, k_eff),
                )
                if clipped:
                    ctx.truncated = True
                    ctx.events.append(
                        DegradationEvent(
                            "exact",
                            "clipped",
                            f"enumeration cap "
                            f"{self.prefix_enumeration_limit} reached",
                        )
                    )
                return [SetAnswer(m, prob) for m, prob in scored[:l]]
            evaluator = self._exact(fp, pruned)
            ppo = self._ppo(fp, pruned)
            candidate_sets = set()
            with span("enumerate", k=k_eff, budgeted=True):
                for prefix in enumerate_prefixes(ppo, k_eff):
                    if len(candidate_sets) >= self.prefix_enumeration_limit:
                        ctx.truncated = True
                        ctx.events.append(
                            DegradationEvent(
                                "exact",
                                "clipped",
                                f"enumeration cap "
                                f"{self.prefix_enumeration_limit} reached",
                            )
                        )
                        break
                    if not budget.consume_enumeration():
                        ctx.truncated = True
                        ctx.partial = True
                        ctx.events.append(
                            DegradationEvent(
                                "exact",
                                "clipped",
                                budget.exhausted_reason() or "enumeration",
                            )
                        )
                        break
                    candidate_sets.add(
                        frozenset(rec.record_id for rec in prefix)
                    )
            if not candidate_sets:
                raise _StageSkipped(
                    "budget exhausted before any candidate set was "
                    "enumerated"
                )
            scored = [
                (members, evaluator.top_set_probability(members))
                for members in candidate_sets
            ]
            scored.sort(key=lambda kv: (-kv[1], sorted(kv[0])))
            return [SetAnswer(m, prob) for m, prob in scored[:l]]

        def run_mcmc() -> List[SetAnswer]:
            sampler = self._sampler(pruned, fp, ctx.sampler_seed, ctx.backend)
            matrix_samples = max(2000, base_samples // 5)
            rank_matrix: Optional[np.ndarray] = None
            with span("sample", requested=matrix_samples) as sample_span:
                sc = self._rank_counts(
                    fp,
                    sampler,
                    matrix_samples,
                    max_rank=k_eff,
                    budget=budget,
                    sampler_seed=ctx.sampler_seed,
                )
                if sample_span is not None:
                    sample_span.set(done=sc.done)
            if sc.done > 0:
                rank_matrix = sc.counts / sc.done

            def simulate():
                with span("walk", chains=self.mcmc_chains, target="set"):
                    sim = TopKSimulation(
                        pruned,
                        k_eff,
                        target="set",
                        n_chains=self.mcmc_chains,
                        seed=self._mcmc_call_seed(
                            "set", k_eff, l, ctx.mcmc_seed
                        ),
                        workers=self.workers,
                        plan=self._plan_for(fp, pruned),
                        pairwise_cache=self._pairwise_cache(),
                        backend=ctx.backend,
                    )
                    return sim.run(
                        max_steps=self.mcmc_steps,
                        psrf_threshold=self.psrf_threshold,
                        top_l=l,
                        rank_matrix=rank_matrix,
                        budget=budget,
                    )

            if budget is None:
                result = self.cache.artifact(
                    "mcmc",
                    (
                        fp,
                        self._backend_key(ctx.sampler_seed),
                        "set",
                        k_eff,
                        l,
                        matrix_samples,
                        self.mcmc_chains,
                        self.mcmc_steps,
                        self.psrf_threshold,
                        ctx.mcmc_seed,
                    ),
                    simulate,
                )
            else:
                result = simulate()
            if result.partial:
                ctx.partial = True
                ctx.events.append(
                    DegradationEvent(
                        "mcmc", "clipped", result.stop_reason or "deadline"
                    )
                )
            ctx.error_bound = result.error_estimate
            ctx.diagnostics = {
                "converged": result.converged,
                "total_steps": result.total_steps,
                "acceptance_rate": result.acceptance_rate,
                "states_visited": result.states_visited,
            }
            return [
                SetAnswer(frozenset(key), prob)
                for key, prob in result.answers
            ]

        def run_montecarlo() -> List[SetAnswer]:
            sampler = self._sampler(pruned, fp, ctx.sampler_seed, ctx.backend)
            requested = base_samples
            denom = requested
            with span("sample", requested=requested):
                if budget is not None:
                    grant = budget.take_samples(requested)
                    if grant == 0:
                        raise _StageSkipped(
                            "sample budget exhausted "
                            f"({budget.exhausted_reason() or 'samples'})"
                        )
                    if grant < requested:
                        ctx.partial = True
                        ctx.events.append(
                            DegradationEvent(
                                "montecarlo",
                                "clipped",
                                f"sample cap granted {grant}/{requested}",
                            )
                        )
                    denom = grant
                    freq = sampler.empirical_top_sets(k_eff, denom, seed=0)
                else:
                    freq = self.cache.artifact(
                        "empirical-set",
                        (fp, self._backend_key(ctx.sampler_seed), k_eff, denom),
                        lambda: sampler.empirical_top_sets(
                            k_eff, denom, seed=0
                        ),
                    )
            with span("aggregate"):
                ranked = sorted(
                    freq.items(), key=lambda kv: (-kv[1], sorted(kv[0]))
                )
            if ctx.partial and ranked:
                ctx.half_width = wilson_half_width(ranked[0][1], denom)
            return [SetAnswer(m, prob) for m, prob in ranked[:l]]

        def run_baseline() -> List[SetAnswer]:
            order = self._median_ranking(pruned)
            members = frozenset(rec.record_id for rec in order[:k_eff])
            return [SetAnswer(members, 1.0)]

        method = ctx.method
        if method == "auto":
            stages: List[Tuple[str, Callable[[], List]]] = []
            if self._enumerable(pruned, fp, k_eff):
                stages.append(("exact", run_exact))
            stages.append(("mcmc", run_mcmc))
            stages.append(("montecarlo", run_montecarlo))
            stages.append(("baseline", run_baseline))
            stages = self._apply_plan(
                ctx, "utop_set", stages, fp, pruned, k_eff, base_samples
            )
        elif method == "exact":
            stages = [("exact", run_exact)]
        elif method == "mcmc":
            stages = [("mcmc", run_mcmc)]
        elif method == "montecarlo":
            stages = [("montecarlo", run_montecarlo)]
        elif method == "baseline":
            stages = [("baseline", run_baseline)]
        else:
            raise QueryError(f"unknown method {method!r} for UTop-Set")
        used, answers = self._run_stages(
            stages, budget, ctx.events, timings=ctx.stage_seconds
        )
        ctx.used = used
        return answers

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release pools and shared-memory segments this engine created.

        Tears down every owned :class:`ParallelSampler` — their thread
        and process pools and exported plan segments. Idempotent, and
        not terminal: samplers re-create resources lazily, so an engine
        can keep answering queries after ``close()`` (it just starts
        cold). Samplers obtained from a shared computation cache may be
        serving other engines; closing them here is safe for the same
        reason.
        """
        for sampler in self._owned_samplers:
            sampler.close()

    def __enter__(self) -> "RankingEngine":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def explain(
        self, query: str, k: int, deadline_ms: Optional[float] = None
    ) -> dict:
        """Explain the evaluation plan for a query without running it.

        Parameters
        ----------
        query:
            ``"utop_rank"``, ``"utop_prefix"``, or ``"utop_set"`` (for
            UTop-Rank, ``k`` is the upper rank ``j``).
        k:
            The query's dominance level.
        deadline_ms:
            Optional deadline the planner should plan against, in
            milliseconds — the same value the serving layer passes per
            request. Affects only the ``plan`` block: with a deadline
            the block shows which stages the planner would skip.

        Returns
        -------
        dict
            Pruning outcome, whether the densities allow exact
            evaluation, the (capped) size of the enumeration space,
            the method the ``"auto"`` policy would select, an
            ``observability`` block (tracing default plus a metrics
            snapshot), and — when the planner is enabled — a ``plan``
            block with the cost model's predicted seconds per ladder
            stage next to the observed actuals it has fitted so far.
        """
        if query not in ("utop_rank", "utop_prefix", "utop_set"):
            raise QueryError(f"unknown query kind {query!r}")
        if k < 1:
            raise QueryError("k must be positive")
        self._refresh_table()
        pruned, fp = self._pruned_entry(k)
        k_eff = min(k, len(pruned))
        plan = {
            "query": query,
            "k": k,
            "database_size": len(self.records),
            "pruned_size": len(pruned),
            "pruning_enabled": self.prune,
            "exact_densities": supports_exact(pruned),
            "workers": self.workers,
            "backend": self.backend,
            "effective_backend": self._effective_backend(None),
            "fingerprint": fp,
            "cache": self.cache.stats().to_dict(),
            "observability": {
                "trace_enabled": self.trace,
                "metrics": self._metrics.snapshot(),
            },
        }
        if query == "utop_rank":
            plan["method"] = (
                "exact"
                if plan["exact_densities"]
                and len(pruned) <= self.exact_record_limit
                else "montecarlo"
            )
            plan["samples"] = self.samples
            plan["plan"] = self._explain_plan(
                query, fp, pruned, k_eff, deadline_ms
            )
            return plan
        space = self._prefix_space(fp, pruned, k_eff)
        plan["prefix_space"] = space
        plan["enumeration_limit"] = self.prefix_enumeration_limit
        plan["truncated"] = (
            space is None or space > self.prefix_enumeration_limit
        )
        enumerable = (
            plan["exact_densities"]
            and space is not None
            and space <= self.prefix_enumeration_limit
        )
        plan["method"] = "exact" if enumerable else "mcmc"
        if plan["method"] == "mcmc":
            plan["mcmc_chains"] = self.mcmc_chains
            plan["mcmc_steps"] = self.mcmc_steps
        plan["plan"] = self._explain_plan(
            query, fp, pruned, k_eff, deadline_ms
        )
        return plan

    def _explain_plan(
        self,
        kind: str,
        fp: str,
        pruned: Sequence[UncertainRecord],
        depth: int,
        deadline_ms: Optional[float],
    ) -> Optional[dict]:
        """The ``plan`` block of :meth:`explain` (None: planner off).

        Builds the same plan :meth:`query` would for the ``auto``
        ladder — same features, same fitted model — and pairs each
        stage's predicted seconds with the observed per-stage actuals
        the model has accumulated for this fingerprint.
        """
        if self.planner is None:
            return None
        ctx = _EvalContext(
            budget=None,
            method="auto",
            sampler_seed=self._sampler_seed,
            mcmc_seed=self._mcmc_seed,
        )
        if kind == "utop_rank":
            names = ["montecarlo", "baseline"]
            if (
                supports_exact(pruned)
                and len(pruned) <= self.exact_record_limit
            ):
                names.insert(0, "exact")
        else:
            names = ["mcmc", "montecarlo", "baseline"]
            if self._enumerable(pruned, fp, depth):
                names.insert(0, "exact")
        model = self.cache.cost_model(fp)
        features = self._plan_features(
            kind, fp, pruned, depth, self.samples, ctx
        )
        budget = (
            Budget.for_deadline(deadline_ms / 1000.0)
            if deadline_ms is not None
            else None
        )
        computed = self.planner.plan(model, features, names, budget)
        stages = []
        for entry in computed.stages:
            observed = model.observed_stats(stage_key(kind, entry.stage))
            payload = entry.to_dict()
            payload["observed"] = observed
            stages.append(payload)
        return {
            "chosen": computed.chosen,
            "budgeted": computed.budgeted,
            "deadline_ms": deadline_ms,
            "planned_samples": computed.planned_samples,
            "features": features.to_dict(),
            "stages": stages,
        }

    # ------------------------------------------------------------------
    # RANK-AGGREGATION queries (Def. 7)
    # ------------------------------------------------------------------

    def rank_aggregation(
        self,
        method: str = "auto",
        samples: Optional[int] = None,
        seed: Optional[int] = None,
        trace: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> QueryResult:
        """Evaluate Rank-Agg under the footrule distance (Theorem 2).

        Never pruned: the consensus ranking needs every rank's
        probabilities. ``method``: ``"auto"``, ``"exact"``, or
        ``"montecarlo"`` (selects how the ``eta`` matrix is obtained).
        """
        return self.query(
            Query(
                kind="rank_aggregation",
                method=method,
                samples=samples,
                seed=seed,
                trace=trace,
                backend=backend,
            )
        )

    def _eval_rank_aggregation(
        self, spec: Query, ctx: _EvalContext
    ) -> List[RankAggAnswer]:
        records = self.records
        fp = self._db_fp
        ctx.pruned_size = len(records)
        method = ctx.method
        if method == "auto":
            use_exact = (
                supports_exact(records)
                and len(records) <= self.exact_record_limit
            )
            method = "exact" if use_exact else "montecarlo"
        requested = spec.samples or self.samples

        def aggregate() -> Tuple[Tuple[str, ...], float]:
            if method == "exact":
                # The exact evaluator shares the per-database pairwise
                # memo through its probability_greater entry point; the
                # eta matrix itself is memoized inside the evaluator.
                with span("dp", records=len(records)):
                    matrix = self._exact(
                        fp, records
                    ).rank_probability_matrix()
                tolerance = 1e-9
            else:
                sampler = self._sampler(records, fp, ctx.sampler_seed, ctx.backend)
                with span("sample", requested=requested) as sample_span:
                    sc = self._rank_counts(
                        fp,
                        sampler,
                        requested,
                        sampler_seed=ctx.sampler_seed,
                    )
                    if sample_span is not None:
                        sample_span.set(done=sc.done)
                matrix = sc.counts / sc.done
                # Sampling noise perturbs footrule costs by roughly
                # n / sqrt(samples); ties inside that band canonicalize
                # to the expected-rank order so the Monte-Carlo
                # consensus agrees with the exact one on tied optima.
                tolerance = len(records) / math.sqrt(max(sc.done, 1))
            with span("aggregate"):
                ranking, cost = optimal_rank_aggregation(
                    matrix, records, tie_tolerance=tolerance
                )
            return tuple(rec.record_id for rec in ranking), cost

        if method == "exact":
            key: Tuple = (fp, "exact")
        elif method == "montecarlo":
            key = (fp, self._backend_key(ctx.sampler_seed), requested)
        else:
            raise QueryError(f"unknown method {method!r} for Rank-Agg")
        ranking_ids, cost = self.cache.artifact("rank-agg", key, aggregate)
        ctx.used = method
        return [
            RankAggAnswer(ranking=ranking_ids, expected_distance=cost)
        ]
