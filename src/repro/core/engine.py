"""`RankingEngine` — the library's main entry point.

Ties the pieces of the paper together the way its evaluation does:

1. **Prune** the database with k-dominance (Algorithm 2) at the level the
   query allows (``j`` for UTop-Rank(i, j), ``k`` for TOP-k queries;
   rank aggregation needs all ranks and is never pruned).
2. **Pick an evaluation method**: exact (piecewise-polynomial integrals)
   when the densities allow it and the answer space is small enough to
   enumerate; Monte-Carlo integration for RECORD-RANK queries (the
   paper's §VI-C choice); multi-chain MCMC for TOP-k queries over large
   spaces (§VI-D).
3. **Return** typed answers with probabilities and execution metadata.

Example
-------
>>> from repro import uniform, certain
>>> from repro.core.engine import RankingEngine
>>> db = [certain("a1", 9.0), uniform("a2", 5.0, 8.0), certain("a3", 7.0)]
>>> engine = RankingEngine(db, seed=7)
>>> engine.utop_rank(1, 1).top.record_id
'a1'
"""

from __future__ import annotations

import logging
import math
import time
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .budget import Budget
from .errors import EvaluationError, QueryError
from .exact import ExactEvaluator, supports_exact
from .linext import count_prefixes, enumerate_prefixes
from .mcmc import TopKSimulation
from .montecarlo import MonteCarloEvaluator, select_top_rank_candidates
from .numeric import wilson_half_width
from .parallel import ParallelSampler, resolve_workers
from .ppo import ProbabilisticPartialOrder
from .pruning import shrink_database
from .queries import (
    DegradationEvent,
    PrefixAnswer,
    QueryResult,
    RankAggAnswer,
    RecordAnswer,
    SetAnswer,
)
from .rank_agg import optimal_rank_aggregation
from .records import UncertainRecord

__all__ = ["RankingEngine"]

logger = logging.getLogger(__name__)


class _StageSkipped(EvaluationError):
    """A ladder stage declined to run (typically: budget already drained)."""


class RankingEngine:
    """High-level evaluator for ranking queries over uncertain scores.

    Parameters
    ----------
    records:
        The database ``D`` of :class:`UncertainRecord`.
    seed:
        Seed for all randomized evaluation (Monte-Carlo, MCMC). The
        default ``0`` makes every run reproducible out of the box; pass
        ``None`` to opt into OS entropy explicitly.
    prune:
        Whether to apply k-dominance pruning ahead of evaluation.
    exact_record_limit:
        Maximum (pruned) database size for which exact per-rank
        probabilities are computed; larger inputs use Monte-Carlo.
    prefix_enumeration_limit:
        Maximum number of distinct k-prefixes that the exact TOP-k path
        will enumerate; larger spaces switch to MCMC.
    samples:
        Default Monte-Carlo sample count (the paper's experiments use
        10,000).
    mcmc_chains / mcmc_steps / psrf_threshold:
        Multi-chain simulation parameters for TOP-k queries.
    copula:
        Optional :class:`~repro.core.correlation.GaussianCopula` over
        the records (in database order) modelling score correlation.
        When set, evaluation is restricted to the sampling-based methods
        that remain valid without independence: UTop-Rank, rank
        distributions, and rank aggregation run on correlated samples;
        UTop-Prefix/UTop-Set fall back to empirical frequencies
        (``method="montecarlo"``); exact and MCMC paths are refused.
        k-dominance pruning stays sound because dominance is a
        support-containment property that holds on every joint sample.
    workers:
        ``None`` (default) keeps the legacy single-evaluator sampling
        path. Any other value — an integer, ``"auto"``, or even ``1`` —
        switches the Monte-Carlo paths to the sharded
        :class:`~repro.core.parallel.ParallelSampler` and runs MCMC
        chains on that many threads. Because shard streams are derived
        from a fixed shard count, every result is identical for every
        worker count; the knob only changes wall-clock time.
    budget:
        Optional default :class:`~repro.core.budget.Budget` applied to
        every query (a per-query ``budget=`` argument overrides it).
        With a budget in force, ``method="auto"`` degrades along the
        ladder exact → Monte-Carlo → score-median baseline instead of
        raising, recording a :class:`DegradationEvent` per sacrificed
        stage on the result; Monte-Carlo stages return best-so-far
        partial estimates with a Wilson confidence half-width when the
        budget drains mid-run.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        seed: Optional[int] = 0,
        prune: bool = True,
        exact_record_limit: int = 20,
        prefix_enumeration_limit: int = 20_000,
        samples: int = 10_000,
        mcmc_chains: int = 10,
        mcmc_steps: int = 3_000,
        psrf_threshold: float = 1.05,
        copula=None,
        workers: Union[int, str, None] = None,
        budget: Optional[Budget] = None,
    ) -> None:
        if not records:
            raise QueryError("cannot rank an empty database")
        self.records = list(records)
        self.rng = np.random.default_rng(seed)
        # Resolve eagerly so a bad value fails at construction, not at
        # the first query.
        self.workers: Optional[int] = (
            None if workers is None else resolve_workers(workers)
        )
        self.prune = prune
        self.exact_record_limit = exact_record_limit
        self.prefix_enumeration_limit = prefix_enumeration_limit
        self.samples = samples
        self.mcmc_chains = mcmc_chains
        self.mcmc_steps = mcmc_steps
        self.psrf_threshold = psrf_threshold
        self.budget = budget
        self.copula = copula
        if copula is not None and copula.dimension != len(self.records):
            raise QueryError(
                f"copula dimension {copula.dimension} does not match "
                f"database size {len(self.records)}"
            )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def ppo(self) -> ProbabilisticPartialOrder:
        """The partial order induced by the full database."""
        return ProbabilisticPartialOrder(self.records)

    def _pruned(self, level: int) -> List[UncertainRecord]:
        if not self.prune or level >= len(self.records):
            return self.records
        return shrink_database(self.records, level).kept

    def _child_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.rng.integers(2**63))

    def _sampler_factory(
        self, subset: Sequence[UncertainRecord]
    ) -> Callable[[int], MonteCarloEvaluator]:
        """Seed-to-evaluator constructor over ``subset``, honoring the copula.

        A Gaussian copula marginalizes to any record subset by taking
        the corresponding correlation submatrix, so pruned databases
        keep exactly the joint distribution of the surviving records.
        The factory form lets :class:`ParallelSampler` build one
        copula-aware evaluator per shard.
        """
        if self.copula is None:
            return lambda s: MonteCarloEvaluator(subset, seed=s)
        from .correlation import CorrelatedMonteCarloEvaluator, GaussianCopula

        wanted = {rec.record_id for rec in subset}
        idx = [
            i
            for i, rec in enumerate(self.records)
            if rec.record_id in wanted
        ]
        sub = self.copula.correlation[np.ix_(idx, idx)]
        return lambda s: CorrelatedMonteCarloEvaluator(
            subset, GaussianCopula(sub), seed=s
        )

    def _sampler(
        self, subset: Sequence[UncertainRecord]
    ) -> Union[MonteCarloEvaluator, ParallelSampler]:
        """Monte-Carlo front-end over ``subset``.

        With ``workers=None`` this is a single evaluator (legacy
        behavior); otherwise a sharded :class:`ParallelSampler` whose
        results are worker-count invariant.
        """
        factory = self._sampler_factory(subset)
        seed = int(self.rng.integers(2**63))
        if self.workers is None:
            return factory(seed)
        return ParallelSampler(
            subset, seed=seed, workers=self.workers, factory=factory
        )

    def _guard_copula(self, method: str) -> str:
        """Map/refuse methods that assume independence under a copula."""
        if self.copula is None:
            return method
        if method == "auto":
            return "montecarlo"
        if method in ("exact", "mcmc"):
            raise QueryError(
                f"method {method!r} assumes independent scores and is "
                "invalid when a copula is set; use 'montecarlo'"
            )
        return method

    def _effective_budget(self, budget: Optional[Budget]) -> Optional[Budget]:
        """Per-query budget override, falling back to the engine default."""
        return budget if budget is not None else self.budget

    def _median_ranking(
        self, subset: Sequence[UncertainRecord]
    ) -> List[UncertainRecord]:
        """Deterministic ranking by median score (the degradation floor).

        Collapses each record's score distribution to its median
        (``ppf(0.5)``; the point value for deterministic records) and
        sorts descending with the record-id tie-breaker. Defensive by
        construction: a failing or non-finite quantile falls back to
        the interval midpoint, so this stage cannot raise for any
        record that passed model validation.
        """

        def median(rec: UncertainRecord) -> float:
            if rec.is_deterministic:
                return rec.lower
            try:
                value = float(rec.score.ppf(0.5))
            except Exception as exc:
                logger.warning(
                    "median of record %r failed (%s: %s); using the "
                    "interval midpoint",
                    rec.record_id,
                    type(exc).__name__,
                    exc,
                )
                return 0.5 * (rec.lower + rec.upper)
            if not math.isfinite(value):
                return 0.5 * (rec.lower + rec.upper)
            return value

        return sorted(
            subset, key=lambda rec: (-median(rec), rec.record_id)
        )

    def _run_stages(
        self,
        stages: Sequence[Tuple[str, Callable[[], List]]],
        budget: Optional[Budget],
        events: List[DegradationEvent],
    ) -> Tuple[str, List]:
        """Drive the degradation ladder over ``stages`` in order.

        Each stage is a ``(name, thunk)`` pair; the first thunk that
        returns supplies the answers. A stage that raises
        :class:`EvaluationError` (or declines via ``_StageSkipped``) is
        recorded as a :class:`DegradationEvent` and the ladder falls
        through to the next rung — unless it is the *only* stage
        (an explicitly requested method), in which case the error
        propagates unchanged. Expensive stages are skipped outright
        when the budget is already expired; the baseline rung is free
        and always allowed to run.
        """
        total = len(stages)
        last_error: Optional[EvaluationError] = None
        for index, (name, thunk) in enumerate(stages):
            if (
                budget is not None
                and name != "baseline"
                and budget.expired()
            ):
                reason = budget.exhausted_reason() or "deadline"
                events.append(DegradationEvent(name, "skipped", reason))
                last_error = EvaluationError(
                    f"budget exhausted before the {name} stage ({reason})"
                )
                continue
            try:
                answers = thunk()
            except _StageSkipped as skip:
                events.append(DegradationEvent(name, "skipped", str(skip)))
                last_error = skip
                continue
            except EvaluationError as exc:
                if total == 1:
                    raise
                events.append(
                    DegradationEvent(
                        name, "failed", f"{type(exc).__name__}: {exc}"
                    )
                )
                last_error = exc
                continue
            if index > 0:
                events.append(
                    DegradationEvent(
                        name, "fallback", "earlier stages degraded"
                    )
                )
            return name, answers
        if last_error is not None:
            raise last_error
        raise EvaluationError("no evaluation stage available")

    # ------------------------------------------------------------------
    # RECORD-RANK queries (Def. 4)
    # ------------------------------------------------------------------

    def utop_rank(
        self,
        i: int,
        j: int,
        l: int = 1,
        method: str = "auto",
        samples: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> QueryResult:
        """Evaluate l-UTop-Rank(i, j).

        ``method`` is ``"auto"``, ``"exact"``, ``"montecarlo"``, or
        ``"baseline"`` (the median-score collapse). Under ``"auto"``
        with a resource ``budget``, evaluation degrades along
        exact → Monte-Carlo → baseline instead of raising; the result
        records the ladder steps taken, carries ``partial=True`` for
        clipped Monte-Carlo estimates, and reports a Wilson confidence
        half-width for the top answer of a partial estimate.
        """
        if i < 1 or j < i:
            raise QueryError(f"invalid rank range [{i}, {j}]")
        if l < 1:
            raise QueryError("l must be positive")
        start = time.perf_counter()
        budget = self._effective_budget(budget)
        method = self._guard_copula(method)
        pruned = self._pruned(j)
        requested = samples or self.samples
        events: List[DegradationEvent] = []
        partial = False
        half_width: Optional[float] = None

        def run_exact() -> List[RecordAnswer]:
            evaluator = ExactEvaluator(pruned)
            matrix = evaluator.rank_probability_matrix(
                max_rank=j, budget=budget
            )
            probs = matrix[:, i - 1 : j].sum(axis=1)
            order = sorted(
                range(len(pruned)),
                key=lambda t: (-probs[t], pruned[t].record_id),
            )
            return [
                RecordAnswer(pruned[t].record_id, float(probs[t]))
                for t in order[:l]
            ]

        def run_montecarlo() -> List[RecordAnswer]:
            nonlocal partial, half_width
            sampler = self._sampler(pruned)
            if budget is None:
                pairs = sampler.top_rank_candidates(i, j, l, requested)
                return [
                    RecordAnswer(rec.record_id, prob) for rec, prob in pairs
                ]
            # The engine — not the shards — takes the sample grant, so
            # the number of samples drawn is a pure function of budget
            # state, never of shard scheduling (the determinism-under-
            # budget contract).
            grant = budget.take_samples(requested)
            if grant == 0:
                raise _StageSkipped(
                    "sample budget exhausted "
                    f"({budget.exhausted_reason() or 'samples'})"
                )
            sc = sampler.rank_counts(grant, max_rank=j, budget=budget)
            if sc.done == 0:
                raise _StageSkipped(
                    f"budget expired before the first sample chunk "
                    f"({sc.reason or 'deadline'})"
                )
            matrix = sc.counts / sc.done
            pairs = select_top_rank_candidates(pruned, matrix, i, j, l)
            if grant < requested or sc.partial:
                partial = True
                events.append(
                    DegradationEvent(
                        "montecarlo",
                        "clipped",
                        sc.reason
                        or f"sample cap granted {grant}/{requested}",
                    )
                )
                if pairs:
                    half_width = wilson_half_width(pairs[0][1], sc.done)
            return [
                RecordAnswer(rec.record_id, prob) for rec, prob in pairs
            ]

        def run_baseline() -> List[RecordAnswer]:
            order = self._median_ranking(pruned)
            probs = {
                rec.record_id: 1.0 if i <= rank <= j else 0.0
                for rank, rec in enumerate(order, start=1)
            }
            ranked = sorted(
                pruned,
                key=lambda rec: (-probs[rec.record_id], rec.record_id),
            )
            return [
                RecordAnswer(rec.record_id, probs[rec.record_id])
                for rec in ranked[:l]
            ]

        if method == "auto":
            stages: List[Tuple[str, Callable[[], List]]] = []
            if (
                supports_exact(pruned)
                and len(pruned) <= self.exact_record_limit
            ):
                stages.append(("exact", run_exact))
            stages.append(("montecarlo", run_montecarlo))
            stages.append(("baseline", run_baseline))
        elif method == "exact":
            stages = [("exact", run_exact)]
        elif method == "montecarlo":
            stages = [("montecarlo", run_montecarlo)]
        elif method == "baseline":
            stages = [("baseline", run_baseline)]
        else:
            raise QueryError(f"unknown method {method!r} for UTop-Rank")
        used, answers = self._run_stages(stages, budget, events)
        return QueryResult(
            answers=answers,
            method=used,
            elapsed=time.perf_counter() - start,
            database_size=len(self.records),
            pruned_size=len(pruned),
            partial=partial,
            confidence_half_width=half_width,
            degradation=events,
        )

    def rank_distribution(
        self,
        record_id: str,
        max_rank: Optional[int] = None,
        method: str = "auto",
        samples: Optional[int] = None,
    ) -> np.ndarray:
        """Full rank distribution ``eta_r(t)`` of one record.

        Returns a vector of length ``max_rank`` (default: the database
        size) whose ``r``-th entry is the probability that the record
        occupies rank ``r + 1`` across linear extensions. Exact when the
        densities allow it and the database is small; Monte-Carlo
        otherwise.
        """
        if all(rec.record_id != record_id for rec in self.records):
            raise QueryError(f"record {record_id!r} is not in this database")
        method = self._guard_copula(method)
        if method == "auto":
            use_exact = (
                supports_exact(self.records)
                and len(self.records) <= self.exact_record_limit
            )
            method = "exact" if use_exact else "montecarlo"
        if method == "exact":
            return ExactEvaluator(self.records).rank_probabilities(
                record_id, max_rank=max_rank
            )
        if method != "montecarlo":
            raise QueryError(f"unknown method {method!r}")
        sampler = self._sampler(self.records)
        matrix = sampler.rank_probability_matrix(
            samples or self.samples, max_rank=max_rank
        )
        index = next(
            i
            for i, rec in enumerate(self.records)
            if rec.record_id == record_id
        )
        return matrix[index]

    # ------------------------------------------------------------------
    # related-work semantics expressed in the paper's model
    # ------------------------------------------------------------------

    def global_topk(
        self, k: int, method: str = "auto", budget: Optional[Budget] = None
    ) -> QueryResult:
        """Global-Top-k semantics under score uncertainty.

        The analog of Zhang & Chomicki's Global-Top-k [16] in the
        paper's model: the ``k`` records with the highest probability of
        ranking in the top ``k`` — exactly ``k``-UTop-Rank(1, k).
        """
        if k < 1:
            raise QueryError("k must be positive")
        return self.utop_rank(1, k, l=k, method=method, budget=budget)

    def threshold_topk(
        self,
        k: int,
        threshold: float,
        method: str = "auto",
        budget: Optional[Budget] = None,
    ) -> QueryResult:
        """PT-k semantics under score uncertainty (Hua et al. [17]).

        All records whose probability of ranking in the top ``k``
        reaches ``threshold``; the answer size is data-dependent
        (possibly empty, possibly larger than ``k``).
        """
        if k < 1:
            raise QueryError("k must be positive")
        if not 0.0 < threshold <= 1.0:
            raise QueryError("threshold must be in (0, 1]")
        result = self.utop_rank(
            1, k, l=len(self.records), method=method, budget=budget
        )
        result.answers = [
            answer
            for answer in result.answers
            if answer.probability >= threshold
        ]
        return result

    # ------------------------------------------------------------------
    # TOP-k queries (Defs. 5 and 6)
    # ------------------------------------------------------------------

    def _enumerable(self, pruned: Sequence[UncertainRecord], k: int) -> bool:
        if not supports_exact(pruned):
            return False
        try:
            ppo = ProbabilisticPartialOrder(pruned)
            return (
                count_prefixes(ppo, k, max_states=200_000)
                <= self.prefix_enumeration_limit
            )
        except EvaluationError:
            return False

    def utop_prefix(
        self,
        k: int,
        l: int = 1,
        method: str = "auto",
        budget: Optional[Budget] = None,
    ) -> QueryResult:
        """Evaluate l-UTop-Prefix(k).

        ``method``: ``"auto"``, ``"exact"`` (enumerate + integrate),
        ``"mcmc"`` (multi-chain simulation), ``"montecarlo"``
        (empirical frequencies over sampled rankings), or ``"baseline"``
        (median-score collapse). Under ``"auto"`` the ladder is
        exact → MCMC → Monte-Carlo → baseline; a clipped enumeration
        marks the result ``truncated=True``, and budget-stopped stages
        return best-so-far answers with ``partial=True``.
        """
        if k < 1:
            raise QueryError("k must be positive")
        if l < 1:
            raise QueryError("l must be positive")
        start = time.perf_counter()
        budget = self._effective_budget(budget)
        method = self._guard_copula(method)
        pruned = self._pruned(k)
        k_eff = min(k, len(pruned))
        events: List[DegradationEvent] = []
        partial = False
        truncated = False
        half_width: Optional[float] = None
        error_bound: Optional[float] = None
        diagnostics: dict = {}

        def run_exact() -> List[PrefixAnswer]:
            nonlocal partial, truncated
            evaluator = ExactEvaluator(pruned)
            ppo = ProbabilisticPartialOrder(pruned)
            scored: List[Tuple[Tuple[str, ...], float]] = []
            for prefix in enumerate_prefixes(ppo, k_eff):
                if len(scored) >= self.prefix_enumeration_limit:
                    # Another prefix exists beyond the cap: the answer
                    # space was clipped, and the best prefix may be
                    # outside the enumerated region.
                    truncated = True
                    events.append(
                        DegradationEvent(
                            "exact",
                            "clipped",
                            f"enumeration cap "
                            f"{self.prefix_enumeration_limit} reached",
                        )
                    )
                    break
                if budget is not None and not budget.consume_enumeration():
                    truncated = True
                    partial = True
                    events.append(
                        DegradationEvent(
                            "exact",
                            "clipped",
                            budget.exhausted_reason() or "enumeration",
                        )
                    )
                    break
                scored.append(
                    (
                        tuple(rec.record_id for rec in prefix),
                        evaluator.prefix_probability(prefix),
                    )
                )
            if not scored:
                raise _StageSkipped(
                    "budget exhausted before any prefix was enumerated"
                )
            scored.sort(key=lambda kv: (-kv[1], kv[0]))
            return [PrefixAnswer(p, prob) for p, prob in scored[:l]]

        def run_mcmc() -> List[PrefixAnswer]:
            nonlocal partial, error_bound, diagnostics
            sampler = self._sampler(pruned)
            matrix_samples = max(2000, self.samples // 5)
            rank_matrix: Optional[np.ndarray] = None
            if budget is None:
                rank_matrix = sampler.rank_probability_matrix(
                    matrix_samples, max_rank=k_eff
                )
            else:
                grant = budget.take_samples(matrix_samples)
                if grant > 0:
                    sc = sampler.rank_counts(
                        grant, max_rank=k_eff, budget=budget
                    )
                    if sc.done > 0:
                        rank_matrix = sc.counts / sc.done
            sim = TopKSimulation(
                pruned,
                k_eff,
                target="prefix",
                n_chains=self.mcmc_chains,
                rng=self._child_rng(),
                workers=self.workers,
            )
            result = sim.run(
                max_steps=self.mcmc_steps,
                psrf_threshold=self.psrf_threshold,
                top_l=l,
                rank_matrix=rank_matrix,
                budget=budget,
            )
            if result.partial:
                partial = True
                events.append(
                    DegradationEvent(
                        "mcmc", "clipped", result.stop_reason or "deadline"
                    )
                )
            error_bound = result.error_estimate
            diagnostics = {
                "converged": result.converged,
                "total_steps": result.total_steps,
                "acceptance_rate": result.acceptance_rate,
                "states_visited": result.states_visited,
                "psrf": result.trace.psrf[-1] if result.trace.psrf else None,
            }
            return [
                PrefixAnswer(tuple(key), prob)
                for key, prob in result.answers
            ]

        def run_montecarlo() -> List[PrefixAnswer]:
            nonlocal partial, half_width
            sampler = self._sampler(pruned)
            requested = self.samples
            denom = requested
            if budget is not None:
                grant = budget.take_samples(requested)
                if grant == 0:
                    raise _StageSkipped(
                        "sample budget exhausted "
                        f"({budget.exhausted_reason() or 'samples'})"
                    )
                if grant < requested:
                    partial = True
                    events.append(
                        DegradationEvent(
                            "montecarlo",
                            "clipped",
                            f"sample cap granted {grant}/{requested}",
                        )
                    )
                denom = grant
            freq = sampler.empirical_top_prefixes(k_eff, denom)
            ranked = sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))
            if partial and ranked:
                half_width = wilson_half_width(ranked[0][1], denom)
            return [PrefixAnswer(p, prob) for p, prob in ranked[:l]]

        def run_baseline() -> List[PrefixAnswer]:
            order = self._median_ranking(pruned)
            prefix = tuple(rec.record_id for rec in order[:k_eff])
            # Probability 1.0 under the median-collapsed (deterministic)
            # database — the method label marks the fidelity loss.
            return [PrefixAnswer(prefix, 1.0)]

        if method == "auto":
            stages: List[Tuple[str, Callable[[], List]]] = []
            if self._enumerable(pruned, k_eff):
                stages.append(("exact", run_exact))
            stages.append(("mcmc", run_mcmc))
            stages.append(("montecarlo", run_montecarlo))
            stages.append(("baseline", run_baseline))
        elif method == "exact":
            stages = [("exact", run_exact)]
        elif method == "mcmc":
            stages = [("mcmc", run_mcmc)]
        elif method == "montecarlo":
            stages = [("montecarlo", run_montecarlo)]
        elif method == "baseline":
            stages = [("baseline", run_baseline)]
        else:
            raise QueryError(f"unknown method {method!r} for UTop-Prefix")
        used, answers = self._run_stages(stages, budget, events)
        return QueryResult(
            answers=answers,
            method=used,
            elapsed=time.perf_counter() - start,
            database_size=len(self.records),
            pruned_size=len(pruned),
            error_bound=error_bound,
            diagnostics=diagnostics,
            partial=partial,
            truncated=truncated,
            confidence_half_width=half_width,
            degradation=events,
        )

    def utop_set(
        self,
        k: int,
        l: int = 1,
        method: str = "auto",
        budget: Optional[Budget] = None,
    ) -> QueryResult:
        """Evaluate l-UTop-Set(k); methods and ladder as in :meth:`utop_prefix`."""
        if k < 1:
            raise QueryError("k must be positive")
        if l < 1:
            raise QueryError("l must be positive")
        start = time.perf_counter()
        budget = self._effective_budget(budget)
        method = self._guard_copula(method)
        pruned = self._pruned(k)
        k_eff = min(k, len(pruned))
        events: List[DegradationEvent] = []
        partial = False
        truncated = False
        half_width: Optional[float] = None
        error_bound: Optional[float] = None
        diagnostics: dict = {}

        def run_exact() -> List[SetAnswer]:
            nonlocal partial, truncated
            evaluator = ExactEvaluator(pruned)
            ppo = ProbabilisticPartialOrder(pruned)
            candidate_sets = set()
            for prefix in enumerate_prefixes(ppo, k_eff):
                if len(candidate_sets) >= self.prefix_enumeration_limit:
                    truncated = True
                    events.append(
                        DegradationEvent(
                            "exact",
                            "clipped",
                            f"enumeration cap "
                            f"{self.prefix_enumeration_limit} reached",
                        )
                    )
                    break
                if budget is not None and not budget.consume_enumeration():
                    truncated = True
                    partial = True
                    events.append(
                        DegradationEvent(
                            "exact",
                            "clipped",
                            budget.exhausted_reason() or "enumeration",
                        )
                    )
                    break
                candidate_sets.add(
                    frozenset(rec.record_id for rec in prefix)
                )
            if not candidate_sets:
                raise _StageSkipped(
                    "budget exhausted before any candidate set was "
                    "enumerated"
                )
            scored = [
                (members, evaluator.top_set_probability(members))
                for members in candidate_sets
            ]
            scored.sort(key=lambda kv: (-kv[1], sorted(kv[0])))
            return [SetAnswer(m, prob) for m, prob in scored[:l]]

        def run_mcmc() -> List[SetAnswer]:
            nonlocal partial, error_bound, diagnostics
            sampler = self._sampler(pruned)
            matrix_samples = max(2000, self.samples // 5)
            rank_matrix: Optional[np.ndarray] = None
            if budget is None:
                rank_matrix = sampler.rank_probability_matrix(
                    matrix_samples, max_rank=k_eff
                )
            else:
                grant = budget.take_samples(matrix_samples)
                if grant > 0:
                    sc = sampler.rank_counts(
                        grant, max_rank=k_eff, budget=budget
                    )
                    if sc.done > 0:
                        rank_matrix = sc.counts / sc.done
            sim = TopKSimulation(
                pruned,
                k_eff,
                target="set",
                n_chains=self.mcmc_chains,
                rng=self._child_rng(),
                workers=self.workers,
            )
            result = sim.run(
                max_steps=self.mcmc_steps,
                psrf_threshold=self.psrf_threshold,
                top_l=l,
                rank_matrix=rank_matrix,
                budget=budget,
            )
            if result.partial:
                partial = True
                events.append(
                    DegradationEvent(
                        "mcmc", "clipped", result.stop_reason or "deadline"
                    )
                )
            error_bound = result.error_estimate
            diagnostics = {
                "converged": result.converged,
                "total_steps": result.total_steps,
                "acceptance_rate": result.acceptance_rate,
                "states_visited": result.states_visited,
            }
            return [
                SetAnswer(frozenset(key), prob)
                for key, prob in result.answers
            ]

        def run_montecarlo() -> List[SetAnswer]:
            nonlocal partial, half_width
            sampler = self._sampler(pruned)
            requested = self.samples
            denom = requested
            if budget is not None:
                grant = budget.take_samples(requested)
                if grant == 0:
                    raise _StageSkipped(
                        "sample budget exhausted "
                        f"({budget.exhausted_reason() or 'samples'})"
                    )
                if grant < requested:
                    partial = True
                    events.append(
                        DegradationEvent(
                            "montecarlo",
                            "clipped",
                            f"sample cap granted {grant}/{requested}",
                        )
                    )
                denom = grant
            freq = sampler.empirical_top_sets(k_eff, denom)
            ranked = sorted(
                freq.items(), key=lambda kv: (-kv[1], sorted(kv[0]))
            )
            if partial and ranked:
                half_width = wilson_half_width(ranked[0][1], denom)
            return [SetAnswer(m, prob) for m, prob in ranked[:l]]

        def run_baseline() -> List[SetAnswer]:
            order = self._median_ranking(pruned)
            members = frozenset(rec.record_id for rec in order[:k_eff])
            return [SetAnswer(members, 1.0)]

        if method == "auto":
            stages: List[Tuple[str, Callable[[], List]]] = []
            if self._enumerable(pruned, k_eff):
                stages.append(("exact", run_exact))
            stages.append(("mcmc", run_mcmc))
            stages.append(("montecarlo", run_montecarlo))
            stages.append(("baseline", run_baseline))
        elif method == "exact":
            stages = [("exact", run_exact)]
        elif method == "mcmc":
            stages = [("mcmc", run_mcmc)]
        elif method == "montecarlo":
            stages = [("montecarlo", run_montecarlo)]
        elif method == "baseline":
            stages = [("baseline", run_baseline)]
        else:
            raise QueryError(f"unknown method {method!r} for UTop-Set")
        used, answers = self._run_stages(stages, budget, events)
        return QueryResult(
            answers=answers,
            method=used,
            elapsed=time.perf_counter() - start,
            database_size=len(self.records),
            pruned_size=len(pruned),
            error_bound=error_bound,
            diagnostics=diagnostics,
            partial=partial,
            truncated=truncated,
            confidence_half_width=half_width,
            degradation=events,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def explain(self, query: str, k: int) -> dict:
        """Explain the evaluation plan for a query without running it.

        Parameters
        ----------
        query:
            ``"utop_rank"``, ``"utop_prefix"``, or ``"utop_set"`` (for
            UTop-Rank, ``k`` is the upper rank ``j``).
        k:
            The query's dominance level.

        Returns
        -------
        dict
            Pruning outcome, whether the densities allow exact
            evaluation, the (capped) size of the enumeration space, and
            the method the ``"auto"`` policy would select — the plan a
            user inspects when a query is slower than expected.
        """
        if query not in ("utop_rank", "utop_prefix", "utop_set"):
            raise QueryError(f"unknown query kind {query!r}")
        if k < 1:
            raise QueryError("k must be positive")
        pruned = self._pruned(k)
        k_eff = min(k, len(pruned))
        plan = {
            "query": query,
            "k": k,
            "database_size": len(self.records),
            "pruned_size": len(pruned),
            "pruning_enabled": self.prune,
            "exact_densities": supports_exact(pruned),
            "workers": self.workers,
        }
        if query == "utop_rank":
            plan["method"] = (
                "exact"
                if plan["exact_densities"]
                and len(pruned) <= self.exact_record_limit
                else "montecarlo"
            )
            plan["samples"] = self.samples
            return plan
        space: Optional[int]
        try:
            space = count_prefixes(
                ProbabilisticPartialOrder(pruned), k_eff, max_states=200_000
            )
        except EvaluationError:
            space = None
        plan["prefix_space"] = space
        plan["enumeration_limit"] = self.prefix_enumeration_limit
        plan["truncated"] = (
            space is None or space > self.prefix_enumeration_limit
        )
        enumerable = (
            plan["exact_densities"]
            and space is not None
            and space <= self.prefix_enumeration_limit
        )
        plan["method"] = "exact" if enumerable else "mcmc"
        if plan["method"] == "mcmc":
            plan["mcmc_chains"] = self.mcmc_chains
            plan["mcmc_steps"] = self.mcmc_steps
        return plan

    # ------------------------------------------------------------------
    # RANK-AGGREGATION queries (Def. 7)
    # ------------------------------------------------------------------

    def rank_aggregation(
        self, method: str = "auto", samples: Optional[int] = None
    ) -> QueryResult:
        """Evaluate Rank-Agg under the footrule distance (Theorem 2).

        Never pruned: the consensus ranking needs every rank's
        probabilities. ``method``: ``"auto"``, ``"exact"``, or
        ``"montecarlo"`` (selects how the ``eta`` matrix is obtained).
        """
        start = time.perf_counter()
        method = self._guard_copula(method)
        records = self.records
        if method == "auto":
            use_exact = (
                supports_exact(records)
                and len(records) <= self.exact_record_limit
            )
            method = "exact" if use_exact else "montecarlo"
        if method == "exact":
            matrix = ExactEvaluator(records).rank_probability_matrix()
        elif method == "montecarlo":
            sampler = self._sampler(records)
            matrix = sampler.rank_probability_matrix(samples or self.samples)
        else:
            raise QueryError(f"unknown method {method!r} for Rank-Agg")
        ranking, cost = optimal_rank_aggregation(matrix, records)
        answer = RankAggAnswer(
            ranking=tuple(rec.record_id for rec in ranking),
            expected_distance=cost,
        )
        return QueryResult(
            answers=[answer],
            method=method,
            elapsed=time.perf_counter() - start,
            database_size=len(records),
            pruned_size=len(records),
        )
