"""Descriptive analytics over probabilistic partial orders.

Utilities a user exploring an uncertain ranking actually reaches for:
summaries of how uncertain the data is, how tangled the partial order
is, and what the per-record rank distributions look like. All of them
operate on either the raw records, the
:class:`~repro.core.ppo.ProbabilisticPartialOrder`, or a rank-probability
matrix (exact or Monte-Carlo), so they compose with every evaluator.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .errors import QueryError
from .ppo import ProbabilisticPartialOrder, dominates
from .records import UncertainRecord

__all__ = [
    "expected_ranks",
    "rank_variances",
    "rank_entropies",
    "comparability_ratio",
    "most_uncertain_pairs",
    "uncertainty_summary",
]


def _check_matrix(rank_matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(rank_matrix, dtype=float)
    if matrix.ndim != 2:
        raise QueryError("rank matrix must be 2-dimensional")
    return matrix


def expected_ranks(rank_matrix: np.ndarray) -> np.ndarray:
    """Expected (1-based) rank of each record.

    ``rank_matrix[t, j]`` is ``eta_{j+1}(t)``; rows should sum to ~1
    (pass a full-width matrix, not a truncated one, for meaningful
    expectations).
    """
    matrix = _check_matrix(rank_matrix)
    ranks = np.arange(1, matrix.shape[1] + 1)
    return matrix @ ranks


def rank_variances(rank_matrix: np.ndarray) -> np.ndarray:
    """Variance of each record's rank distribution."""
    matrix = _check_matrix(rank_matrix)
    ranks = np.arange(1, matrix.shape[1] + 1)
    mean = matrix @ ranks
    second = matrix @ (ranks**2)
    return np.maximum(second - mean**2, 0.0)


def rank_entropies(rank_matrix: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of each record's rank distribution.

    Zero for records with a certain rank; up to ``log(n)`` for records
    that could land anywhere — a direct per-record measure of how much
    ranking ambiguity the score uncertainty causes.
    """
    matrix = _check_matrix(rank_matrix)
    safe = np.where(matrix > 0.0, matrix, 1.0)
    return -(matrix * np.log(safe)).sum(axis=1)


def comparability_ratio(ppo: ProbabilisticPartialOrder) -> float:
    """Fraction of record pairs ordered by dominance.

    1.0 means the PPO is a total order (no ranking uncertainty at all);
    0.0 means a pure antichain (every pair is probabilistic). This is
    the single number that best predicts how expensive TOP-k queries
    will be: the linear-extension count explodes as the ratio falls.
    """
    n = len(ppo.records)
    if n < 2:
        return 1.0
    comparable = 0
    for a, b in itertools.combinations(ppo.records, 2):
        if dominates(a, b) or dominates(b, a):
            comparable += 1
    return comparable / (n * (n - 1) / 2)


def most_uncertain_pairs(
    ppo: ProbabilisticPartialOrder, top: int = 10
) -> List[Tuple[UncertainRecord, UncertainRecord, float]]:
    """Record pairs whose relative order is most ambiguous.

    Returns up to ``top`` probabilistic pairs sorted by how close
    ``Pr(a > b)`` is to a coin flip — the pairs where gathering better
    data would sharpen the ranking most.
    """
    if top < 1:
        raise QueryError("top must be positive")
    scored = []
    for a, b in ppo.probabilistic_pairs():
        p = ppo.probability_greater(a, b)
        scored.append((abs(p - 0.5), a, b, p))
    scored.sort(key=lambda item: (item[0], item[1].record_id, item[2].record_id))
    return [(a, b, p) for _gap, a, b, p in scored[:top]]


def uncertainty_summary(records: Sequence[UncertainRecord]) -> Dict[str, float]:
    """Aggregate statistics of the score uncertainty in a database.

    Returns the record count, the fraction with uncertain scores, and
    the mean/max interval widths — the quantities the paper reports
    about its datasets (e.g. "65% of apartment listings have uncertain
    rent").
    """
    if not records:
        raise QueryError("cannot summarize an empty database")
    widths = np.array([rec.upper - rec.lower for rec in records])
    uncertain = widths > 0
    return {
        "records": float(len(records)),
        "uncertain_fraction": float(uncertain.mean()),
        "mean_width": float(widths.mean()),
        "mean_uncertain_width": float(
            widths[uncertain].mean() if uncertain.any() else 0.0
        ),
        "max_width": float(widths.max()),
        "score_low": float(min(rec.lower for rec in records)),
        "score_high": float(max(rec.upper for rec in records)),
    }
