"""Validation of user-supplied score models.

The evaluators trust that every :class:`ScoreDistribution` is a proper
probability distribution on its declared interval. Library-provided
families guarantee that by construction, but the ABC is open — a user
can plug in a custom subclass, and a buggy ``cdf`` silently corrupts
every probability downstream. This module provides the checks a
database would run at ingestion time:

- :func:`validate_distribution` — support declaration, CDF boundary
  values, monotonicity, pdf/cdf consistency, ppf inversion, and
  sampling support, each reported as a named
  :class:`ValidationIssue`.
- :func:`validate_records` — per-record validation plus database-level
  checks (duplicate ids).

Checks are numeric (grid- and sample-based), so they are probabilistic
guarantees, not proofs; tolerances are explicit parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .distributions import ScoreDistribution
from .errors import ModelError
from .records import UncertainRecord

__all__ = ["ValidationIssue", "validate_distribution", "validate_records"]


@dataclass(frozen=True)
class ValidationIssue:
    """One detected problem: a machine-readable code plus a message."""

    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


def validate_distribution(
    dist: ScoreDistribution,
    grid_points: int = 257,
    samples: int = 2_000,
    tolerance: float = 1e-6,
    rng: np.random.Generator | None = None,
) -> List[ValidationIssue]:
    """Check one distribution; returns the (possibly empty) issue list."""
    issues: List[ValidationIssue] = []
    lo, up = dist.lower, dist.upper
    if not (np.isfinite(lo) and np.isfinite(up)):
        issues.append(
            ValidationIssue("support", "support bounds must be finite")
        )
        return issues
    if lo > up:
        issues.append(
            ValidationIssue("support", f"lower {lo} exceeds upper {up}")
        )
        return issues

    span = max(up - lo, 1.0)
    below = lo - 0.01 * span
    above = up + 0.01 * span
    if dist.cdf(below) > tolerance:
        issues.append(
            ValidationIssue(
                "cdf-left", f"cdf({below}) = {dist.cdf(below)} != 0 below support"
            )
        )
    if abs(dist.cdf(above) - 1.0) > tolerance:
        issues.append(
            ValidationIssue(
                "cdf-right",
                f"cdf({above}) = {dist.cdf(above)} != 1 above support",
            )
        )

    if not dist.is_deterministic:
        xs = np.linspace(lo, up, grid_points)
        cdf = np.asarray(dist.cdf(xs), dtype=float)
        if np.any(np.diff(cdf) < -tolerance):
            issues.append(
                ValidationIssue("cdf-monotone", "cdf decreases on its support")
            )
        if np.any(cdf < -tolerance) or np.any(cdf > 1.0 + tolerance):
            issues.append(
                ValidationIssue("cdf-range", "cdf leaves the [0, 1] range")
            )
        pdf = np.asarray(dist.pdf(xs), dtype=float)
        if np.any(pdf < -tolerance):
            issues.append(
                ValidationIssue("pdf-negative", "pdf takes negative values")
            )
        if np.all(np.isfinite(pdf)):
            # Trapezoid integral of the pdf should approximate 1.
            total = float(np.trapezoid(pdf, xs))
            if abs(total - 1.0) > 0.05:
                issues.append(
                    ValidationIssue(
                        "pdf-mass",
                        f"pdf integrates to {total:.4f}, expected ~1",
                    )
                )
            # pdf/cdf consistency at interior points.
            mid = (xs[:-1] + xs[1:]) / 2.0
            increments = np.diff(cdf)
            approx = np.asarray(dist.pdf(mid)) * np.diff(xs)
            if np.any(
                np.abs(approx - increments)
                > 0.2 * (np.abs(increments) + 1.0 / grid_points)
            ):
                issues.append(
                    ValidationIssue(
                        "pdf-cdf", "pdf is inconsistent with cdf increments"
                    )
                )

        qs = np.linspace(0.01, 0.99, 25)
        ppf = np.asarray(dist.ppf(qs), dtype=float)
        if np.any(ppf < lo - tolerance * span) or np.any(
            ppf > up + tolerance * span
        ):
            issues.append(
                ValidationIssue("ppf-range", "ppf leaves the support")
            )
        roundtrip = np.asarray(dist.cdf(ppf), dtype=float)
        if np.any(np.abs(roundtrip - qs) > 0.02):
            issues.append(
                ValidationIssue("ppf-inverse", "cdf(ppf(q)) deviates from q")
            )

    generator = rng if rng is not None else np.random.default_rng(0)  # reprolint: disable=DET002 -- fixed probe seed: validation draws a deterministic spot-check sample and never feeds query estimators
    try:
        drawn = np.atleast_1d(dist.sample(generator, samples))
    except Exception as exc:  # pragma: no cover - defensive
        issues.append(
            ValidationIssue("sample-error", f"sampling raised {exc!r}")
        )
        return issues
    if drawn.size != samples:
        issues.append(
            ValidationIssue(
                "sample-shape",
                f"requested {samples} samples, got {drawn.size}",
            )
        )
    if drawn.size and not np.all(np.isfinite(drawn)):
        bad = int(np.count_nonzero(~np.isfinite(np.asarray(drawn, float))))
        issues.append(
            ValidationIssue(
                "sample-finite",
                f"{bad} of {drawn.size} samples are NaN or infinite",
            )
        )
        return issues
    if drawn.size and (
        drawn.min() < lo - tolerance * span
        or drawn.max() > up + tolerance * span
    ):
        issues.append(
            ValidationIssue(
                "sample-support", "samples fall outside the support"
            )
        )
    return issues


def validate_records(
    records: Sequence[UncertainRecord],
    raise_on_issue: bool = False,
    **kwargs: object,
) -> dict[str, List[ValidationIssue]]:
    """Validate a whole database; returns issues keyed by record id.

    Database-level problems (duplicate ids) are keyed under ``"*"``.
    With ``raise_on_issue=True`` the first problem raises
    :class:`~repro.core.errors.ModelError` instead.
    """
    report: dict[str, List[ValidationIssue]] = {}
    seen: set[str] = set()
    duplicates: List[str] = []
    for rec in records:
        if rec.record_id in seen:
            duplicates.append(rec.record_id)
        seen.add(rec.record_id)
    if duplicates:
        report["*"] = [
            ValidationIssue(
                "duplicate-ids", f"duplicate record ids: {sorted(duplicates)}"
            )
        ]
    for rec in records:
        issues = validate_distribution(rec.score, **kwargs)
        if issues:
            report[rec.record_id] = issues
    if report and raise_on_issue:
        rid, issues = next(iter(report.items()))
        raise ModelError(f"record {rid!r}: {issues[0]}")
    return report
