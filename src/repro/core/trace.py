"""Zero-dependency query tracing: nested spans with wall/CPU timings.

The engine's query paths cross four evaluation methods, parallel
shards, MCMC chains, and a shared computation cache; when a query is
slow or degrades, ``elapsed`` alone cannot say *where* the time went.
This module provides the span tree every query path emits into:

- :class:`Span` — one timed region with a name, structured attributes,
  monotonic wall-clock (``time.perf_counter``) and process CPU
  (``time.process_time``) timings, and thread-safe child spans, so
  parallel shards and MCMC chains can attach children concurrently.
- A **contextvar-carried active span**: :func:`span` opens a child of
  whatever span is active in the current context and makes it active
  for the duration, so instrumented code below the engine needs no
  signature changes. When no span is active every helper is a no-op,
  which is what keeps the cost of disabled tracing at roughly one
  contextvar read per call site.
- **Cross-thread propagation**: contextvars do not flow into worker
  threads, so dispatching code captures :func:`current_span` *before*
  handing work to a pool and opens children with :func:`span_under`
  (or :func:`activate`) inside the worker.
- **JSON export** (:meth:`Span.to_dict`) rendered by
  :func:`render_trace` and the ``python -m repro.trace`` CLI.

Span CPU timings use the *process* CPU clock: for spans whose work runs
concurrently with other spans (shards, chains) the CPU delta includes
their neighbours' work and is best read as "process CPU burned while
this span was open".
"""

from __future__ import annotations

import contextvars
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "accumulate",
    "activate",
    "annotate",
    "current_span",
    "render_trace",
    "set_span_start_hook",
    "span",
    "span_under",
    "stage_durations",
    "walk_spans",
]

# Called (with the new span) at every span start when installed. The
# determinism sanitizer (``python -m repro.lint.sanitize``) uses this to
# inject scheduling jitter at span boundaries — the natural preemption
# points between evaluation stages — without instrumenting call sites.
_SPAN_START_HOOK: Optional[Any] = None


def set_span_start_hook(hook: Optional[Any]) -> Optional[Any]:
    """Install (or clear, with ``None``) the global span-start hook.

    Returns the previously installed hook so callers can restore it.
    The hook runs inside ``Span.__init__`` on whatever thread opens the
    span; it must be cheap, thread-safe, and must not raise.
    """
    global _SPAN_START_HOOK
    previous = _SPAN_START_HOOK
    _SPAN_START_HOOK = hook
    return previous


class Span:
    """One timed region of query evaluation, with children.

    Starts its clocks at construction; :meth:`end` (idempotent) stops
    them. Children are appended under a per-span lock so concurrent
    workers can attach spans to a shared parent; attributes are plain
    JSON-able values updated via :meth:`set` / :meth:`add`.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "_lock",
        "_start_wall",
        "_start_cpu",
        "_end_wall",
        "_end_cpu",
    )

    def __init__(self, name: str, **attributes: Any) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes)
        self.children: List["Span"] = []
        self._lock = threading.Lock()
        hook = _SPAN_START_HOOK
        if hook is not None:
            # Before the clocks start, so injected jitter perturbs the
            # schedule without inflating this span's own timings.
            hook(self)
        self._start_wall = time.perf_counter()
        self._start_cpu = time.process_time()
        self._end_wall: Optional[float] = None
        self._end_cpu: Optional[float] = None

    # -- lifecycle -----------------------------------------------------

    def end(self) -> None:
        """Stop the clocks (idempotent: the first call wins)."""
        with self._lock:
            if self._end_wall is None:
                self._end_wall = time.perf_counter()
                self._end_cpu = time.process_time()

    @property
    def ended(self) -> bool:
        """Whether :meth:`end` has been called."""
        return self._end_wall is not None

    @property
    def wall(self) -> float:
        """Wall-clock seconds covered (live value while still open)."""
        end = self._end_wall
        return (end if end is not None else time.perf_counter()) - (
            self._start_wall
        )

    @property
    def cpu(self) -> float:
        """Process CPU seconds burned while the span was open."""
        end = self._end_cpu
        return (end if end is not None else time.process_time()) - (
            self._start_cpu
        )

    # -- structure -----------------------------------------------------

    def child(self, name: str, **attributes: Any) -> "Span":
        """Open (and attach) a child span; safe from any thread."""
        node = Span(name, **attributes)
        with self._lock:
            self.children.append(node)
        return node

    def set(self, **attributes: Any) -> None:
        """Merge attributes into the span (last write wins per key)."""
        with self._lock:
            self.attributes.update(attributes)

    def add(self, key: str, amount: float = 1.0) -> None:
        """Accumulate a numeric attribute (creating it at zero)."""
        with self._lock:
            current = self.attributes.get(key, 0)
            self.attributes[key] = current + amount

    # -- export --------------------------------------------------------

    @classmethod
    def from_export(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span subtree from a :meth:`to_dict` export.

        Used to graft spans recorded in worker *processes* back into
        the parent's span tree: the rebuilt nodes carry the recorded
        wall/CPU durations (clocks pinned, already ended) and skip the
        span-start hook — they happened elsewhere, so re-running jitter
        or restarting clocks here would distort them.
        """
        node = cls.__new__(cls)
        node.name = str(data.get("name", ""))
        node.attributes = dict(data.get("attributes") or {})
        node.children = [
            cls.from_export(child) for child in data.get("children") or []
        ]
        node._lock = threading.Lock()
        node._start_wall = 0.0
        node._start_cpu = 0.0
        node._end_wall = float(data.get("wall_seconds") or 0.0)
        node._end_cpu = float(data.get("cpu_seconds") or 0.0)
        return node

    def adopt(self, data: Dict[str, Any]) -> "Span":
        """Attach an exported subtree as a child; safe from any thread."""
        node = Span.from_export(data)
        with self._lock:
            self.children.append(node)
        return node

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable span tree (see ``python -m repro.trace``).

        Schema, per node: ``name`` (str), ``wall_seconds`` /
        ``cpu_seconds`` (floats), ``attributes`` (flat dict), and
        ``children`` (list of nodes).
        """
        with self._lock:
            children = list(self.children)
            attributes = dict(self.attributes)
        return {
            "name": self.name,
            "wall_seconds": self.wall,
            "cpu_seconds": self.cpu,
            "attributes": attributes,
            "children": [node.to_dict() for node in children],
        }

    def __repr__(self) -> str:
        state = "ended" if self.ended else "open"
        return (
            f"Span({self.name!r}, {state}, wall={self.wall:.6f}s, "
            f"children={len(self.children)})"
        )


# ----------------------------------------------------------------------
# active-span plumbing
# ----------------------------------------------------------------------

_ACTIVE_SPAN: "contextvars.ContextVar[Optional[Span]]" = (
    contextvars.ContextVar("repro_active_span", default=None)
)


def current_span() -> Optional[Span]:
    """The span active in this context, or ``None`` when tracing is off.

    Worker threads start with a fresh context: capture this value in
    the dispatching thread and pass it to :func:`span_under` /
    :func:`activate` inside the worker.
    """
    return _ACTIVE_SPAN.get()


@contextmanager
def activate(root: Optional[Span]) -> Iterator[Optional[Span]]:
    """Make ``root`` the active span for the duration (no-op on ``None``).

    Does *not* end the span on exit — use this to install a root span
    (or re-install a captured parent inside a worker thread) whose
    lifetime is managed by the caller.
    """
    if root is None:
        yield None
        return
    token = _ACTIVE_SPAN.set(root)
    try:
        yield root
    finally:
        _ACTIVE_SPAN.reset(token)


@contextmanager
def span_under(
    parent: Optional[Span], name: str, **attributes: Any
) -> Iterator[Optional[Span]]:
    """A child span under an explicitly captured parent.

    The cross-thread form of :func:`span`: the dispatching thread
    captures :func:`current_span` and the worker opens its child here.
    No-ops (yields ``None``) when ``parent`` is ``None``; otherwise the
    child is active within the block and ended on exit.
    """
    if parent is None:
        yield None
        return
    child = parent.child(name, **attributes)
    token = _ACTIVE_SPAN.set(child)
    try:
        yield child
    finally:
        _ACTIVE_SPAN.reset(token)
        child.end()


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Optional[Span]]:
    """A child span of the currently active span (no-op when inactive).

    The workhorse instrumentation point: wraps one evaluation stage,
    yielding the new :class:`Span` (or ``None`` when tracing is off) and
    ending it on exit.
    """
    with span_under(current_span(), name, **attributes) as child:
        yield child


def annotate(**attributes: Any) -> None:
    """Set attributes on the active span, if any (no-op otherwise)."""
    active = _ACTIVE_SPAN.get()
    if active is not None:
        active.set(**attributes)


def accumulate(key: str, amount: float = 1.0) -> None:
    """Add to a numeric attribute of the active span, if any."""
    active = _ACTIVE_SPAN.get()
    if active is not None:
        active.add(key, amount)


# ----------------------------------------------------------------------
# span-tree feature extraction
# ----------------------------------------------------------------------

def walk_spans(node: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Depth-first iterator over an exported span tree.

    Accepts the :meth:`Span.to_dict` shape (``name`` / ``wall_seconds``
    / ``children``) and yields every node, root first. The cost-model
    fitter and the ``python -m repro.trace --stats`` aggregation both
    consume this walk so they stay byte-for-byte in agreement about
    which spans exist.
    """
    yield node
    for child in node.get("children") or []:
        yield from walk_spans(child)


def stage_durations(node: Dict[str, Any]) -> Dict[str, List[float]]:
    """Per-stage wall-clock durations across one exported span tree.

    Groups every span's ``wall_seconds`` by span name, preserving
    encounter order within a name. This is the raw material both for
    ``python -m repro.trace --stats`` and for the empirical cost model
    (:mod:`repro.core.costmodel`), which fits per-stage rates from the
    same aggregation.
    """
    grouped: Dict[str, List[float]] = {}
    for current in walk_spans(node):
        name = str(current.get("name", "?"))
        grouped.setdefault(name, []).append(
            float(current.get("wall_seconds") or 0.0)
        )
    return grouped


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def render_trace(node: Dict[str, Any], indent: str = "  ") -> str:
    """Pretty-print an exported span tree (:meth:`Span.to_dict`).

    One line per span: name, wall milliseconds, share of the root's
    wall time, CPU milliseconds, and compact ``key=value`` attributes.
    """
    root_wall = float(node.get("wall_seconds") or 0.0)
    lines: List[str] = []

    def fmt_attrs(attributes: Dict[str, Any]) -> str:
        if not attributes:
            return ""
        parts = []
        for key in sorted(attributes):
            value = attributes[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:.4g}")
            else:
                parts.append(f"{key}={value}")
        return "  [" + " ".join(parts) + "]"

    def walk(current: Dict[str, Any], depth: int) -> None:
        wall = float(current.get("wall_seconds") or 0.0)
        cpu = float(current.get("cpu_seconds") or 0.0)
        share = (
            f"{100.0 * wall / root_wall:5.1f}%"
            if root_wall > 0
            else "    -"
        )
        lines.append(
            f"{indent * depth}{current.get('name', '?')}"
            f"  {wall * 1000.0:9.3f} ms  {share}"
            f"  cpu {cpu * 1000.0:8.3f} ms"
            + fmt_attrs(dict(current.get("attributes") or {}))
        )
        for node_child in current.get("children") or []:
            walk(node_child, depth + 1)

    walk(node, 0)
    return "\n".join(lines)
