"""Empirical per-stage cost model backing the adaptive query planner.

The degradation ladder (:mod:`repro.core.engine`) is reactive: under a
budget it *starts* the most expensive eligible method and falls down
the ladder only as the budget drains, so a query that was always going
to end in Monte-Carlo first burns wall-clock on a doomed exact attempt.
This module supplies the predictive half of the fix: a small cost model
that maps the features the engine already knows *before* running — the
pruned database size, interval-overlap density, requested rank depth,
sample budget, and rank-count cache coverage — to a predicted
wall-clock cost per ladder stage, fit online from the same per-stage
durations the span trees record.

Design constraints, in order:

1. **Determinism of answers.** Predictions gate only *which* stage runs
   (and only under a budget); they never leak into the numbers a stage
   computes. Fitted state is keyed per database fingerprint and stored
   in the :class:`~repro.core.cache.ComputationCache`, so for a fixed
   cache state the plan is a pure function of features.
2. **Useful when cold.** Per-unit priors (:data:`DEFAULT_UNIT_COSTS`,
   calibrated on commodity hardware) give order-of-magnitude
   predictions before the first observation; online fitting replaces
   them from the first completed stage onward.
3. **Mispredictions self-correct.** A stage that was chosen and then
   failed its budget reports ``completed=False``: the observed burn is
   a *lower bound* on the true cost, so the fitted rate is bumped
   geometrically until the planner stops choosing the stage.

The unit formulas (:func:`stage_units`) are deliberately coarse —
``n^2 * depth`` for the exact rank DP, ``space * n`` for prefix
enumeration, ``chains * steps * n`` for MCMC, ``fresh_samples * n`` for
Monte-Carlo — because the model only has to order stages and compare
them against a deadline, not forecast milliseconds exactly.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence

__all__ = [
    "DEFAULT_UNIT_COSTS",
    "CostModel",
    "PlanFeatures",
    "StageStats",
    "overlap_density",
    "stage_key",
    "stage_units",
    "summarize_stages",
]

#: Per-unit wall-clock priors (seconds per work unit), by ladder stage.
#: Calibrated empirically: the exact rank DP runs at ~7e-4 s per
#: ``n^2 * depth`` unit on heavily overlapping continuous densities,
#: prefix enumeration at ~3e-4 s per ``space * n`` unit (one
#: ``prefix_probability`` integration per enumerated prefix), MCMC at
#: ~3e-5 s per ``chains * steps * n`` unit, and columnar Monte-Carlo at
#: ~1.5e-8 s per ``samples * n`` unit. Online fitting replaces these
#: after the first completed observation per (kind, stage).
DEFAULT_UNIT_COSTS: Dict[str, float] = {
    "exact": 7e-4,
    "mcmc": 3e-5,
    "montecarlo": 1.5e-8,
    "baseline": 2e-6,
}

#: Fraction of overlap density below which structure discounts apply:
#: exact and MCMC costs scale with how entangled the partial order is,
#: so a mostly-disjoint database gets a proportionally cheaper estimate.
_DENSITY_FLOOR = 0.1


@dataclass(frozen=True)
class StageStats:
    """Count / total / p50 / max of one stage's observed durations.

    The aggregation shared by ``python -m repro.trace --stats`` and the
    cost-model fitter: both summarize the per-stage duration lists that
    :func:`repro.core.trace.stage_durations` extracts from a span tree.
    """

    name: str
    count: int
    total_seconds: float
    p50_seconds: float
    max_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_seconds": self.total_seconds,
            "p50_seconds": self.p50_seconds,
            "max_seconds": self.max_seconds,
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def summarize_stages(
    durations: Mapping[str, Sequence[float]]
) -> Dict[str, StageStats]:
    """Aggregate per-stage duration lists into :class:`StageStats`."""
    summary: Dict[str, StageStats] = {}
    for name, values in durations.items():
        if not values:
            continue
        summary[name] = StageStats(
            name=name,
            count=len(values),
            total_seconds=float(sum(values)),
            p50_seconds=float(_median(values)),
            max_seconds=float(max(values)),
        )
    return summary


def overlap_density(records: Sequence[Any]) -> float:
    """Fraction of record pairs whose score intervals overlap.

    The cheap O(n log n) stand-in for PPO edge density: a pair whose
    intervals are disjoint is a certain dominance edge (no probability
    integral, no DP entanglement), while overlapping pairs are what the
    exact and MCMC methods pay for. Counted by sorting interval bounds:
    a pair is disjoint exactly when one record's upper bound lies
    strictly below the other's lower bound.
    """
    n = len(records)
    if n < 2:
        return 0.0
    uppers = sorted(float(rec.upper) for rec in records)
    disjoint = sum(
        bisect.bisect_left(uppers, float(rec.lower)) for rec in records
    )
    total = n * (n - 1) // 2
    return max(0.0, min(1.0, (total - disjoint) / total))


@dataclass(frozen=True)
class PlanFeatures:
    """Everything the planner may consult before running a query.

    A pure function of (records, query spec, cache state) — never of
    wall-clock measurements taken during the query — which is what
    keeps the plan choice deterministic for a fixed cache state.
    """

    kind: str
    n: int
    depth: int
    requested_samples: int
    covered_samples: int
    overlap_density: float
    exact_supported: bool
    prefix_space: Optional[int] = None
    mcmc_chains: int = 0
    mcmc_steps: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "n": self.n,
            "depth": self.depth,
            "requested_samples": self.requested_samples,
            "covered_samples": self.covered_samples,
            "overlap_density": self.overlap_density,
            "exact_supported": self.exact_supported,
            "prefix_space": self.prefix_space,
            "mcmc_chains": self.mcmc_chains,
            "mcmc_steps": self.mcmc_steps,
        }


def stage_key(kind: str, stage: str) -> str:
    """The fitted-rate key: stage costs differ per query family."""
    return f"{kind}:{stage}"


def _structure_factor(features: PlanFeatures) -> float:
    """Discount for sparse partial orders (cheap dominance structure)."""
    return _DENSITY_FLOOR + (1.0 - _DENSITY_FLOOR) * max(
        0.0, min(1.0, features.overlap_density)
    )


def stage_units(
    features: PlanFeatures,
    stage: str,
    planned_samples: Optional[int] = None,
) -> float:
    """Work units for one ladder stage under ``features``.

    ``planned_samples`` overrides the Monte-Carlo sample count (the
    planner's covered-block reduction); everything else derives from
    the feature vector alone, so units are deterministic plan inputs.
    """
    n = max(1, features.n)
    depth = max(1, features.depth)
    if stage == "exact":
        if features.kind in ("utop_prefix", "utop_set"):
            space = (
                float(features.prefix_space)
                if features.prefix_space is not None
                else 1e9
            )
            return max(1.0, space * n * _structure_factor(features))
        return float(n * n * depth) * _structure_factor(features)
    if stage == "mcmc":
        chains = max(1, features.mcmc_chains)
        steps = max(1, features.mcmc_steps)
        return float(chains * steps * n)
    if stage == "montecarlo":
        samples = (
            features.requested_samples
            if planned_samples is None
            else planned_samples
        )
        fresh = max(0, samples - features.covered_samples)
        # A fully covered request still pays the aggregation pass.
        return float(max(fresh, 0) * n + n * depth)
    if stage == "baseline":
        return float(n)
    return float(n)


class CostModel:
    """Online-fitted per-unit stage costs for one database fingerprint.

    Thread-safe; persisted in the computation cache via
    :meth:`repro.core.cache.ComputationCache.cost_model`, so the fitted
    coefficients survive across engines sharing a cache (the same
    lifetime as the sampled artifacts the predictions are about).
    """

    #: Exponential-moving weight of each new completed observation.
    ALPHA = 0.4

    def __init__(
        self, priors: Optional[Mapping[str, float]] = None
    ) -> None:
        self._priors: Dict[str, float] = dict(
            DEFAULT_UNIT_COSTS if priors is None else priors
        )
        self._rates: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._total_seconds: Dict[str, float] = {}
        self._lock = threading.Lock()

    def _prior_for(self, key: str) -> float:
        stage = key.rsplit(":", 1)[-1]
        return self._priors.get(stage, self._priors.get("baseline", 1e-6))

    def rate(self, key: str) -> float:
        """Fitted seconds-per-unit for ``key`` (prior when unobserved)."""
        with self._lock:
            fitted = self._rates.get(key)
        return self._prior_for(key) if fitted is None else fitted

    def predict(self, key: str, units: float) -> float:
        """Predicted wall-clock seconds for ``units`` work at ``key``."""
        return self.rate(key) * max(1.0, float(units))

    def observe(
        self,
        key: str,
        units: float,
        seconds: float,
        completed: bool = True,
    ) -> None:
        """Feed one measured stage execution back into the model.

        A completed stage updates the rate as an exponential moving
        average (first observation replaces the prior outright). An
        incomplete stage — chosen, then killed by its budget — only
        yields a *lower bound* on the true rate, so the fitted rate is
        raised to at least double its prior value; repeated
        mispredictions therefore escalate geometrically until the
        planner stops selecting the stage.
        """
        units = max(1.0, float(units))
        seconds = float(seconds)
        if seconds <= 0.0:
            return
        observed = seconds / units
        with self._lock:
            current = self._rates.get(key)
            if completed:
                if current is None or self._counts.get(key, 0) == 0:
                    updated = observed
                else:
                    updated = current + self.ALPHA * (observed - current)
                self._counts[key] = self._counts.get(key, 0) + 1
                self._total_seconds[key] = (
                    self._total_seconds.get(key, 0.0) + seconds
                )
            else:
                base = (
                    self._prior_for(key) if current is None else current
                )
                updated = max(observed, base * 2.0)
            self._rates[key] = updated

    def observations(self, key: str) -> int:
        """How many completed executions have been fit for ``key``."""
        with self._lock:
            return self._counts.get(key, 0)

    def observed_stats(self, key: str) -> Optional[Dict[str, float]]:
        """Observed actual-cost summary for ``key`` (None when unfit)."""
        with self._lock:
            count = self._counts.get(key, 0)
            if count == 0:
                return None
            total = self._total_seconds.get(key, 0.0)
            return {
                "count": float(count),
                "total_seconds": total,
                "mean_seconds": total / count,
            }

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Fitted state per key, for ``explain()`` and debugging."""
        with self._lock:
            keys = set(self._rates) | set(self._counts)
            return {
                key: {
                    "rate": self._rates.get(
                        key, self._prior_for(key)
                    ),
                    "count": float(self._counts.get(key, 0)),
                    "total_seconds": self._total_seconds.get(key, 0.0),
                }
                for key in sorted(keys)
            }
