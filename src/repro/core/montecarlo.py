"""Monte-Carlo integration over the score hypercube (paper §VI-C).

The paper's key insight for RECORD-RANK queries is to transform the
combinatorial space of linear extensions into the continuous hypercube
``Omega = [lo_1, up_1] x ... x [lo_n, up_n]`` of score combinations, which
can be sampled independently: draw one concrete score per record, rank the
draw, and read off where each record landed. The relative frequency of
"record ``t`` landed at a rank in ``[i, j]``" estimates Eq. 7 with error
``O(1 / sqrt(s))`` independent of the space size.

The same sampler estimates prefix probabilities (Eq. 6), top-k set
probabilities, and complete-extension probabilities (Eq. 4), and powers
the empirical top-k state counts used by the space-coverage experiment
(paper Fig. 14).

Everything is **columnar**: at construction the database is compiled
into a :class:`~repro.core.distributions.SamplingPlan` that groups
records by distribution family, so drawing an ``(s, n)`` score matrix
and evaluating the CDF products of Eq. 6 cost a constant number of
NumPy calls per family group instead of one Python call per record.
For sharded multi-worker execution of the same estimators see
:mod:`repro.core.parallel`.
"""

from __future__ import annotations

import heapq
import threading
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from . import metrics
from .budget import Budget, SampleCounts
from .distributions import SamplingPlan, build_sampling_plan
from .errors import EvaluationError, QueryError
from .exact import _tie_perturbations
from .numeric import clamp_probability
from .records import UncertainRecord
from .trace import accumulate

__all__ = ["MonteCarloEvaluator", "compile_plan", "select_top_rank_candidates"]


def compile_plan(records: Sequence[UncertainRecord]) -> SamplingPlan:
    """Compile the columnar sampling plan for a database.

    This is exactly the plan :class:`MonteCarloEvaluator` builds at
    construction — family-grouped columns with tie-breaker perturbations
    applied to duplicated deterministic scores — exposed as a module
    function so the computation cache can compile once per database
    fingerprint and hand the shared plan to every evaluator
    (``MonteCarloEvaluator(records, plan=...)``).
    """
    recs = list(records)
    tie_values = _tie_perturbations(recs)
    overrides = {
        i: tie_values[rec.record_id]
        for i, rec in enumerate(recs)
        if rec.record_id in tie_values
    }
    return build_sampling_plan(
        [rec.score for rec in recs], sample_overrides=overrides
    )


def select_top_rank_candidates(
    records: Sequence[UncertainRecord],
    matrix: np.ndarray,
    i: int,
    j: int,
    l: int,
) -> List[Tuple[UncertainRecord, float]]:
    """The ``l`` best records by ``Pr(rank in [i, j])`` from an eta matrix.

    Keeps an l-sized answer heap (``heapq.nsmallest`` over the
    ``(-probability, record_id)`` key), mirroring the §VI-C complexity
    analysis: selection is ``O(n log l)``, not a full sort. Shared by
    the serial and parallel samplers.
    """
    if l < 1:
        raise QueryError("l must be positive")
    probs = matrix[:, i - 1 : j].sum(axis=1)
    best = heapq.nsmallest(
        l,
        range(len(records)),
        key=lambda t: (-probs[t], records[t].record_id),
    )
    return [(records[t], float(probs[t])) for t in best]


class MonteCarloEvaluator:
    """Sampling-based probability estimator over a fixed database.

    Parameters
    ----------
    records:
        The database ``D`` (after any k-dominance pruning).
    rng:
        Numpy random generator; pass a seeded generator for reproducible
        estimates.
    seed:
        Seed used to build the generator when ``rng`` is not given;
        defaults to ``0`` so estimates are reproducible by default. Also
        the root of the evaluator's :class:`numpy.random.SeedSequence`,
        from which per-call streams are spawned (below).
    plan:
        Optional precompiled :func:`compile_plan` result for the same
        records; skips the per-evaluator plan build so one compiled
        plan can serve many evaluators (the computation cache relies
        on this). The plan carries no random state, so sharing it does
        not couple the evaluators' streams.

    Determinism contract
    --------------------
    Every public estimator accepts an optional ``seed`` argument:

    - ``seed=None`` (default) draws from the evaluator's shared stream,
      so results are reproducible for a fixed seed *and call order* —
      two estimator calls consume the same underlying stream, and
      swapping them changes both estimates.
    - ``seed=<int>`` derives a private generator from the evaluator's
      root ``SeedSequence`` via spawn keys. The estimate then depends
      only on ``(records, constructor seed, call seed, samples)`` — not
      on any other call made before or after — which is what makes
      concurrent use (parallel MCMC chains querying one oracle) and
      cached results well-defined.

    Notes
    -----
    Identical deterministic scores are separated by an infinitesimal,
    tie-breaker-ordered perturbation (the same device the exact evaluator
    uses), so sampled rankings respect the paper's tie semantics.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        plan: Optional[SamplingPlan] = None,
    ) -> None:
        self.records = list(records)
        self._seed_seq = np.random.SeedSequence(seed)
        self.rng = (
            rng if rng is not None else np.random.default_rng(self._seed_seq)
        )
        self._index: Dict[str, int] = {
            rec.record_id: i for i, rec in enumerate(self.records)
        }
        if len(self._index) != len(self.records):
            raise QueryError("duplicate record ids in database")
        self._tie_values = _tie_perturbations(self.records)
        overrides = {
            i: self._tie_values[rec.record_id]
            for i, rec in enumerate(self.records)
            if rec.record_id in self._tie_values
        }
        if plan is not None:
            # A precompiled plan (``compile_plan`` over the same records,
            # typically via the computation cache) — sharing it skips the
            # per-evaluator compile. Plans are immutable after build, so
            # sharing one across evaluators is safe.
            self._plan: SamplingPlan = plan
        else:
            self._plan = build_sampling_plan(
                [rec.score for rec in self.records],
                sample_overrides=overrides,
            )
        self._subplans: Dict[Tuple[int, ...], SamplingPlan] = {}
        # One evaluator is shared across concurrent MCMC chain workers
        # (oracle calls), so the subset-plan memo needs a lock.
        self._subplans_lock = threading.Lock()

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def _stream(self, seed: Optional[int]) -> np.random.Generator:
        """The RNG for one estimator call (see the determinism contract)."""
        if seed is None:
            return self.rng
        root = self._seed_seq
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(*root.spawn_key, int(seed)),
            )
        )

    def _subplan(self, idxs: Sequence[int]) -> SamplingPlan:
        """Columnar plan over a record subset, in the order given."""
        key = tuple(idxs)
        with self._subplans_lock:
            plan = self._subplans.get(key)
        if plan is None:
            overrides = {}
            for col, i in enumerate(key):
                rec = self.records[i]
                if rec.record_id in self._tie_values:
                    overrides[col] = self._tie_values[rec.record_id]
            # Built outside the lock: plan compilation is deterministic
            # for a given key, so a racing duplicate build is wasted
            # work, not a correctness problem.
            plan = build_sampling_plan(
                [self.records[i].score for i in key],
                sample_overrides=overrides,
            )
            with self._subplans_lock:
                plan = self._subplans.setdefault(key, plan)
        return plan

    def _draw(self, rng: np.random.Generator, samples: int) -> np.ndarray:
        """One ``(samples, n)`` score draw from ``rng``.

        The single point subclasses override to change the joint
        (e.g. copula-correlated sampling); every estimator and the
        chunked count loop funnel through here.
        """
        return self._plan.sample(rng, samples)

    def sample_scores(
        self, samples: int, seed: Optional[int] = None
    ) -> np.ndarray:
        """Draw an ``(samples, n)`` matrix of concrete score vectors."""
        if samples < 1:
            raise QueryError("need at least one sample")
        scores = self._draw(self._stream(seed), samples)
        metrics.inc("samples_drawn_total", float(samples))
        accumulate("samples_drawn", samples)
        return scores

    def sample_rankings(
        self, samples: int, seed: Optional[int] = None
    ) -> np.ndarray:
        """Draw sampled rankings: row ``r`` lists record indices by rank.

        ``result[r, 0]`` is the index of the top-ranked record in sample
        ``r``. Per Theorem 1 each row is a valid linear extension drawn
        from the PPO's ranking distribution.
        """
        scores = self.sample_scores(samples, seed=seed)
        return np.argsort(-scores, axis=1, kind="stable")

    def _resolve(self, rec_or_id: Union[UncertainRecord, str]) -> int:
        rid = (
            rec_or_id.record_id
            if isinstance(rec_or_id, UncertainRecord)
            else rec_or_id
        )
        idx = self._index.get(rid)
        if idx is None:
            raise QueryError(f"record {rid!r} is not in this database")
        return idx

    # ------------------------------------------------------------------
    # rank probabilities (Eq. 7)
    # ------------------------------------------------------------------

    #: Cap on score-matrix cells materialized at once; larger requests
    #: are processed in sample chunks so memory stays bounded (~160 MB)
    #: even for paper-scale databases.
    _MAX_MATRIX_CELLS = 20_000_000

    def rank_probability_matrix(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Estimate ``eta_r(t)`` for every record and rank simultaneously.

        Returns an ``(n, max_rank)`` matrix whose rows follow the database
        order; a single batch of samples is shared across all records,
        which is how the UTop-Rank evaluator amortizes sampling cost.
        Large requests are processed in chunks to bound peak memory, and
        each chunk's hits land in the count matrix with one ``np.add.at``
        scatter over ``(record, rank)`` pairs.
        """
        counts = self.rank_count_matrix(samples, max_rank=max_rank, seed=seed)
        return counts / samples

    def rank_count_matrix(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> np.ndarray:
        """Raw ``(n, max_rank)`` occurrence counts behind Eq. 7.

        Exposed separately so sharded execution
        (:class:`~repro.core.parallel.ParallelSampler`) can merge
        partial counts exactly before normalizing.
        """
        return self.rank_counts(samples, max_rank=max_rank, seed=seed).counts

    def rank_counts(
        self,
        samples: int,
        max_rank: Optional[int] = None,
        seed: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> SampleCounts:
        """Budget-aware chunked accumulation of the Eq. 7 counts.

        Draws ``samples`` score vectors in bounded-memory chunks,
        checking ``budget`` (deadline/cancellation) at every chunk
        boundary. On budget exhaustion the counts accumulated so far
        are returned with ``done < requested`` (``partial=True``) and
        the stop reason — never an exception. For a fixed ``seed`` the
        draws per chunk are identical whether or not a budget is
        supplied, so a clipped run is a strict prefix of the full run.

        Raises :class:`~repro.core.errors.EvaluationError` when a drawn
        score is NaN/inf — rankings over non-finite scores are
        meaningless, and a corrupt model must not masquerade as data.
        """
        if samples < 1:
            raise QueryError("need at least one sample")
        n = len(self.records)
        limit = n if max_rank is None else min(max_rank, n)
        chunk = max(1, min(samples, self._MAX_MATRIX_CELLS // max(n, 1)))
        counts = np.zeros((n, limit))
        rank_cols = np.arange(limit)
        rng = self._stream(seed)
        done = 0
        reason: Optional[str] = None
        while done < samples:
            if budget is not None and budget.expired():
                reason = budget.exhausted_reason()
                break
            batch = min(chunk, samples - done)
            scores = self._draw(rng, batch)
            if not np.all(np.isfinite(scores)):
                raise EvaluationError(
                    "sampled scores contain non-finite values; the score "
                    "model is corrupt (see core.validation.validate_records)"
                )
            rankings = np.argsort(-scores, axis=1, kind="stable")
            np.add.at(
                counts, (rankings[:, :limit], rank_cols[None, :]), 1.0
            )
            done += batch
        if done > 0:
            metrics.inc("samples_drawn_total", float(done))
            accumulate("samples_drawn", done)
        return SampleCounts(
            counts=counts, done=done, requested=samples, reason=reason
        )

    def rank_range_probability(
        self,
        record: Union[UncertainRecord, str],
        i: int,
        j: int,
        samples: int,
        seed: Optional[int] = None,
    ) -> float:
        """Estimate ``Pr(t at rank in [i, j])`` (Eq. 7)."""
        if i < 1 or j < i:
            raise QueryError(f"invalid rank range [{i}, {j}]")
        idx = self._resolve(record)
        scores = self.sample_scores(samples, seed=seed)
        target = scores[:, idx]
        better = (scores > target[:, None]).sum(axis=1)
        hits = (better >= i - 1) & (better <= j - 1)
        return clamp_probability(float(hits.mean()))

    def top_rank_candidates(
        self,
        i: int,
        j: int,
        l: int,
        samples: int,
        seed: Optional[int] = None,
    ) -> List[Tuple[UncertainRecord, float]]:
        """The ``l`` most probable records to appear at a rank in ``[i, j]``.

        Shares one sample batch across all records and keeps an l-sized
        answer heap (:func:`select_top_rank_candidates`), mirroring the
        complexity analysis in §VI-C.
        """
        matrix = self.rank_probability_matrix(samples, max_rank=j, seed=seed)
        return select_top_rank_candidates(self.records, matrix, i, j, l)

    # ------------------------------------------------------------------
    # prefix / set / extension probabilities
    # ------------------------------------------------------------------

    def prefix_probability(
        self, prefix: Sequence, samples: int, seed: Optional[int] = None
    ) -> float:
        """Estimate the top-k prefix probability (Eq. 6) by sampling."""
        idxs = [self._resolve(r) for r in prefix]
        if len(set(idxs)) != len(idxs):
            raise QueryError("prefix contains duplicate records")
        if not idxs:
            return 1.0
        scores = self.sample_scores(samples, seed=seed)
        ordered = scores[:, idxs]
        ok = np.all(ordered[:, :-1] > ordered[:, 1:], axis=1)
        rest = np.setdiff1d(np.arange(len(self.records)), idxs)
        if rest.size:
            ok &= scores[:, rest].max(axis=1) < ordered[:, -1]
        return clamp_probability(float(ok.mean()))

    def top_set_probability(
        self, record_set: Iterable, samples: int, seed: Optional[int] = None
    ) -> float:
        """Estimate the top-k set probability by sampling."""
        idxs = [self._resolve(r) for r in record_set]
        if len(set(idxs)) != len(idxs):
            raise QueryError("record set contains duplicates")
        if not idxs:
            return 1.0
        scores = self.sample_scores(samples, seed=seed)
        inside_min = scores[:, idxs].min(axis=1)
        rest = np.setdiff1d(np.arange(len(self.records)), idxs)
        if rest.size == 0:
            return 1.0
        ok = scores[:, rest].max(axis=1) < inside_min
        return clamp_probability(float(ok.mean()))

    def prefix_probability_cdf(
        self, prefix: Sequence, samples: int, seed: Optional[int] = None
    ) -> float:
        """Low-variance Eq. 6 estimator with the CDF-product shortcut.

        Instead of sampling the whole database and counting indicator
        hits (which returns 0 whenever the prefix never materializes in
        the batch), this samples only the ``k`` prefix scores and weights
        each ordered draw by ``prod_{rest} F_j(x_k)`` — exactly the
        paper's improvement of the nested integral (§V, Eq. 6, and
        §VI-D: "the cost ... can be further improved using the CDF
        product of remaining records"). The estimate is unbiased and
        strictly positive whenever the prefix is possible, which is what
        makes it usable as the MCMC state-probability oracle. The prefix
        draw and the rest-of-database CDF product are both columnar
        (one kernel call per family group).
        """
        idxs = [self._resolve(r) for r in prefix]
        if len(set(idxs)) != len(idxs):
            raise QueryError("prefix contains duplicate records")
        if not idxs:
            return 1.0
        rng = self._stream(seed)
        ordered = self._subplan(idxs).sample(rng, samples)
        ok = np.all(ordered[:, :-1] > ordered[:, 1:], axis=1)
        weights = ok.astype(float)
        weights *= self._plan.cdf_product(ordered[:, -1], exclude=idxs)
        return clamp_probability(float(weights.mean()))

    def prefix_probability_sis(
        self, prefix: Sequence, samples: int, seed: Optional[int] = None
    ) -> float:
        """Sequential-importance-sampling estimator for Eq. 6.

        Goes beyond the paper's plain Monte-Carlo integration: scores
        are drawn *conditionally* top-down — ``x_1 ~ f_1``, then
        ``x_2 ~ f_2 | x_2 < x_1`` with weight factor ``F_2(x_1)``, and so
        on — finishing with the CDF-product factor over the remaining
        records. Every draw contributes a positive weight whenever the
        prefix is feasible, so the estimator has dramatically lower
        variance than indicator counting for long prefixes; it is
        unbiased by the usual importance-sampling telescoping argument.
        Used as the default MCMC state-probability oracle on databases
        too large for exact integration. The top-down loop is inherently
        sequential over the ``k`` prefix records (each draw conditions
        on the previous one); the O(n) CDF product over the remaining
        records is columnar.
        """
        idxs = [self._resolve(r) for r in prefix]
        if len(set(idxs)) != len(idxs):
            raise QueryError("prefix contains duplicate records")
        if not idxs:
            return 1.0
        rng = self._stream(seed)
        weights = np.ones(samples)
        prev = np.full(samples, np.inf)
        for i in idxs:  # reprolint: disable=PERF001 -- conditional draws chain through `prev`; the loop spans the k-record prefix, not the database
            rec = self.records[i]
            if rec.is_deterministic:
                value = self._tie_values.get(rec.record_id, rec.lower)
                weights = np.where(prev > value, weights, 0.0)
                prev = np.where(weights > 0.0, value, prev)
                continue
            cap = np.asarray(rec.score.cdf(np.minimum(prev, rec.upper)))
            weights = weights * cap
            # Draw from the score distribution truncated below ``prev``;
            # samples whose weight already collapsed to zero are inert.
            u = rng.random(samples) * np.where(cap > 0.0, cap, 1.0)
            prev = np.asarray(rec.score.ppf(u))
        weights = weights * self._plan.cdf_product(prev, exclude=idxs)
        return clamp_probability(float(weights.mean()))

    def top_set_probability_cdf(
        self, record_set: Iterable, samples: int, seed: Optional[int] = None
    ) -> float:
        """Low-variance top-k set estimator via the CDF product.

        Samples only the set members' scores and weights each draw by
        ``prod_{rest} F_j(min of members)``; both stages are columnar.
        """
        idxs = [self._resolve(r) for r in record_set]
        if len(set(idxs)) != len(idxs):
            raise QueryError("record set contains duplicates")
        if not idxs:
            return 1.0
        rng = self._stream(seed)
        members = self._subplan(idxs).sample(rng, samples)
        inside_min = np.min(members, axis=1)
        weights = self._plan.cdf_product(inside_min, exclude=idxs)
        return clamp_probability(float(weights.mean()))

    def extension_probability(
        self, order: Sequence, samples: int, seed: Optional[int] = None
    ) -> float:
        """Estimate a complete linear extension's probability (Eq. 4)."""
        idxs = [self._resolve(r) for r in order]
        if len(idxs) != len(self.records) or len(set(idxs)) != len(idxs):
            raise QueryError(
                "extension_probability needs a permutation of the database"
            )
        scores = self.sample_scores(samples, seed=seed)
        ordered = scores[:, idxs]
        ok = np.all(ordered[:, :-1] > ordered[:, 1:], axis=1)
        return clamp_probability(float(ok.mean()))

    # ------------------------------------------------------------------
    # empirical top-k state distributions (used by Fig. 14 and tests)
    # ------------------------------------------------------------------

    def empirical_top_prefix_counts(
        self, k: int, samples: int, seed: Optional[int] = None
    ) -> Dict[Tuple[str, ...], int]:
        """Occurrence counts of top-k prefixes among sampled rankings.

        Distinct prefixes are found with one ``np.unique(axis=0)`` pass
        over the ``(s, k)`` top block instead of a Python row loop.
        """
        if k < 1:
            raise QueryError("k must be positive")
        k = min(k, len(self.records))
        rankings = self.sample_rankings(samples, seed=seed)
        rows, counts = np.unique(
            rankings[:, :k], axis=0, return_counts=True
        )
        ids = [rec.record_id for rec in self.records]
        return {
            tuple(ids[i] for i in row): int(c)
            for row, c in zip(rows, counts)
        }

    def empirical_top_prefixes(
        self, k: int, samples: int, seed: Optional[int] = None
    ) -> Dict[Tuple[str, ...], float]:
        """Frequencies of observed top-k prefixes among sampled rankings."""
        counts = self.empirical_top_prefix_counts(k, samples, seed=seed)
        return {key: c / samples for key, c in counts.items()}

    def empirical_top_set_counts(
        self, k: int, samples: int, seed: Optional[int] = None
    ) -> Dict[FrozenSet[str], int]:
        """Occurrence counts of top-k sets among sampled rankings.

        Rows are sorted before the ``np.unique(axis=0)`` pass so that
        order-insensitive membership keys coincide.
        """
        if k < 1:
            raise QueryError("k must be positive")
        k = min(k, len(self.records))
        rankings = self.sample_rankings(samples, seed=seed)
        rows, counts = np.unique(
            np.sort(rankings[:, :k], axis=1), axis=0, return_counts=True
        )
        ids = [rec.record_id for rec in self.records]
        return {
            frozenset(ids[i] for i in row): int(c)
            for row, c in zip(rows, counts)
        }

    def empirical_top_sets(
        self, k: int, samples: int, seed: Optional[int] = None
    ) -> Dict[FrozenSet[str], float]:
        """Frequencies of observed top-k sets among sampled rankings."""
        counts = self.empirical_top_set_counts(k, samples, seed=seed)
        return {key: c / samples for key, c in counts.items()}

    # ------------------------------------------------------------------
    # reference implementations (benchmarks and equivalence tests)
    # ------------------------------------------------------------------

    def _sample_scores_serial(
        self, rng: np.random.Generator, samples: int
    ) -> np.ndarray:
        """Pre-columnar per-record sampling loop.

        Kept (private) as the baseline the columnar plan is benchmarked
        and distribution-tested against; not used by any estimator.
        """
        n = len(self.records)
        out = np.empty((samples, n))
        for i, rec in enumerate(self.records):  # reprolint: disable=PERF001 -- serial reference path retained for the columnar speedup benchmark
            if rec.is_deterministic:
                out[:, i] = self._tie_values.get(rec.record_id, rec.lower)
            else:
                out[:, i] = rec.score.sample(rng, samples)
        return out
