"""Monte-Carlo integration over the score hypercube (paper §VI-C).

The paper's key insight for RECORD-RANK queries is to transform the
combinatorial space of linear extensions into the continuous hypercube
``Omega = [lo_1, up_1] x ... x [lo_n, up_n]`` of score combinations, which
can be sampled independently: draw one concrete score per record, rank the
draw, and read off where each record landed. The relative frequency of
"record ``t`` landed at a rank in ``[i, j]``" estimates Eq. 7 with error
``O(1 / sqrt(s))`` independent of the space size.

The same sampler estimates prefix probabilities (Eq. 6), top-k set
probabilities, and complete-extension probabilities (Eq. 4), and powers
the empirical top-k state counts used by the space-coverage experiment
(paper Fig. 14).

Everything is vectorized: a single ``(s, n)`` score matrix is drawn per
evaluation and reused across records.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .errors import QueryError
from .exact import _tie_perturbations
from .numeric import clamp_probability
from .records import UncertainRecord

__all__ = ["MonteCarloEvaluator"]


class MonteCarloEvaluator:
    """Sampling-based probability estimator over a fixed database.

    Parameters
    ----------
    records:
        The database ``D`` (after any k-dominance pruning).
    rng:
        Numpy random generator; pass a seeded generator for reproducible
        estimates.
    seed:
        Seed used to build the generator when ``rng`` is not given;
        defaults to ``0`` so estimates are reproducible by default.

    Notes
    -----
    Identical deterministic scores are separated by an infinitesimal,
    tie-breaker-ordered perturbation (the same device the exact evaluator
    uses), so sampled rankings respect the paper's tie semantics.
    """

    def __init__(
        self,
        records: Sequence[UncertainRecord],
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
    ) -> None:
        self.records = list(records)
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self._index: Dict[str, int] = {
            rec.record_id: i for i, rec in enumerate(self.records)
        }
        if len(self._index) != len(self.records):
            raise QueryError("duplicate record ids in database")
        self._tie_values = _tie_perturbations(self.records)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample_scores(self, samples: int) -> np.ndarray:
        """Draw an ``(samples, n)`` matrix of concrete score vectors."""
        if samples < 1:
            raise QueryError("need at least one sample")
        n = len(self.records)
        out = np.empty((samples, n))
        for i, rec in enumerate(self.records):
            if rec.is_deterministic:
                out[:, i] = self._tie_values.get(rec.record_id, rec.lower)
            else:
                out[:, i] = rec.score.sample(self.rng, samples)
        return out

    def sample_rankings(self, samples: int) -> np.ndarray:
        """Draw sampled rankings: row ``r`` lists record indices by rank.

        ``result[r, 0]`` is the index of the top-ranked record in sample
        ``r``. Per Theorem 1 each row is a valid linear extension drawn
        from the PPO's ranking distribution.
        """
        scores = self.sample_scores(samples)
        return np.argsort(-scores, axis=1, kind="stable")

    def _resolve(self, rec_or_id) -> int:
        rid = (
            rec_or_id.record_id
            if isinstance(rec_or_id, UncertainRecord)
            else rec_or_id
        )
        idx = self._index.get(rid)
        if idx is None:
            raise QueryError(f"record {rid!r} is not in this database")
        return idx

    # ------------------------------------------------------------------
    # rank probabilities (Eq. 7)
    # ------------------------------------------------------------------

    #: Cap on score-matrix cells materialized at once; larger requests
    #: are processed in sample chunks so memory stays bounded (~160 MB)
    #: even for paper-scale databases.
    _MAX_MATRIX_CELLS = 20_000_000

    def rank_probability_matrix(
        self, samples: int, max_rank: Optional[int] = None
    ) -> np.ndarray:
        """Estimate ``eta_r(t)`` for every record and rank simultaneously.

        Returns an ``(n, max_rank)`` matrix whose rows follow the database
        order; a single batch of samples is shared across all records,
        which is how the UTop-Rank evaluator amortizes sampling cost.
        Large requests are processed in chunks to bound peak memory.
        """
        n = len(self.records)
        limit = n if max_rank is None else min(max_rank, n)
        chunk = max(1, min(samples, self._MAX_MATRIX_CELLS // max(n, 1)))
        counts = np.zeros((n, limit))
        done = 0
        while done < samples:
            batch = min(chunk, samples - done)
            rankings = self.sample_rankings(batch)
            for r in range(limit):
                counts[:, r] += np.bincount(rankings[:, r], minlength=n)
            done += batch
        return counts / samples

    def rank_range_probability(
        self, record: Union[UncertainRecord, str], i: int, j: int, samples: int
    ) -> float:
        """Estimate ``Pr(t at rank in [i, j])`` (Eq. 7)."""
        if i < 1 or j < i:
            raise QueryError(f"invalid rank range [{i}, {j}]")
        idx = self._resolve(record)
        scores = self.sample_scores(samples)
        target = scores[:, idx]
        better = (scores > target[:, None]).sum(axis=1)
        hits = (better >= i - 1) & (better <= j - 1)
        return clamp_probability(float(hits.mean()))

    def top_rank_candidates(
        self, i: int, j: int, l: int, samples: int
    ) -> List[Tuple[UncertainRecord, float]]:
        """The ``l`` most probable records to appear at a rank in ``[i, j]``.

        Shares one sample batch across all records and keeps an l-sized
        answer heap, mirroring the complexity analysis in §VI-C.
        """
        if l < 1:
            raise QueryError("l must be positive")
        matrix = self.rank_probability_matrix(samples, max_rank=j)
        probs = matrix[:, i - 1 : j].sum(axis=1)
        order = sorted(
            range(len(self.records)),
            key=lambda t: (-probs[t], self.records[t].record_id),
        )
        return [(self.records[t], float(probs[t])) for t in order[:l]]

    # ------------------------------------------------------------------
    # prefix / set / extension probabilities
    # ------------------------------------------------------------------

    def prefix_probability(self, prefix: Sequence, samples: int) -> float:
        """Estimate the top-k prefix probability (Eq. 6) by sampling."""
        idxs = [self._resolve(r) for r in prefix]
        if len(set(idxs)) != len(idxs):
            raise QueryError("prefix contains duplicate records")
        if not idxs:
            return 1.0
        scores = self.sample_scores(samples)
        ordered = scores[:, idxs]
        ok = np.all(ordered[:, :-1] > ordered[:, 1:], axis=1)
        rest = np.setdiff1d(np.arange(len(self.records)), idxs)
        if rest.size:
            ok &= scores[:, rest].max(axis=1) < ordered[:, -1]
        return clamp_probability(float(ok.mean()))

    def top_set_probability(self, record_set: Iterable, samples: int) -> float:
        """Estimate the top-k set probability by sampling."""
        idxs = [self._resolve(r) for r in record_set]
        if len(set(idxs)) != len(idxs):
            raise QueryError("record set contains duplicates")
        if not idxs:
            return 1.0
        scores = self.sample_scores(samples)
        inside_min = scores[:, idxs].min(axis=1)
        rest = np.setdiff1d(np.arange(len(self.records)), idxs)
        if rest.size == 0:
            return 1.0
        ok = scores[:, rest].max(axis=1) < inside_min
        return clamp_probability(float(ok.mean()))

    def prefix_probability_cdf(self, prefix: Sequence, samples: int) -> float:
        """Low-variance Eq. 6 estimator with the CDF-product shortcut.

        Instead of sampling the whole database and counting indicator
        hits (which returns 0 whenever the prefix never materializes in
        the batch), this samples only the ``k`` prefix scores and weights
        each ordered draw by ``prod_{rest} F_j(x_k)`` — exactly the
        paper's improvement of the nested integral (§V, Eq. 6, and
        §VI-D: "the cost ... can be further improved using the CDF
        product of remaining records"). The estimate is unbiased and
        strictly positive whenever the prefix is possible, which is what
        makes it usable as the MCMC state-probability oracle.
        """
        idxs = [self._resolve(r) for r in prefix]
        if len(set(idxs)) != len(idxs):
            raise QueryError("prefix contains duplicate records")
        if not idxs:
            return 1.0
        rng = self.rng
        cols = []
        for i in idxs:
            rec = self.records[i]
            if rec.is_deterministic:
                value = self._tie_values.get(rec.record_id, rec.lower)
                cols.append(np.full(samples, value))
            else:
                cols.append(rec.score.sample(rng, samples))
        ordered = np.column_stack(cols)
        ok = np.all(ordered[:, :-1] > ordered[:, 1:], axis=1)
        weights = ok.astype(float)
        last = ordered[:, -1]
        chosen = set(idxs)
        for j, rec in enumerate(self.records):
            if j in chosen:
                continue
            weights *= rec.score.cdf(last)
        return clamp_probability(float(weights.mean()))

    def prefix_probability_sis(self, prefix: Sequence, samples: int) -> float:
        """Sequential-importance-sampling estimator for Eq. 6.

        Goes beyond the paper's plain Monte-Carlo integration: scores
        are drawn *conditionally* top-down — ``x_1 ~ f_1``, then
        ``x_2 ~ f_2 | x_2 < x_1`` with weight factor ``F_2(x_1)``, and so
        on — finishing with the CDF-product factor over the remaining
        records. Every draw contributes a positive weight whenever the
        prefix is feasible, so the estimator has dramatically lower
        variance than indicator counting for long prefixes; it is
        unbiased by the usual importance-sampling telescoping argument.
        Used as the default MCMC state-probability oracle on databases
        too large for exact integration.
        """
        idxs = [self._resolve(r) for r in prefix]
        if len(set(idxs)) != len(idxs):
            raise QueryError("prefix contains duplicate records")
        if not idxs:
            return 1.0
        rng = self.rng
        weights = np.ones(samples)
        prev = np.full(samples, np.inf)
        for i in idxs:
            rec = self.records[i]
            if rec.is_deterministic:
                value = self._tie_values.get(rec.record_id, rec.lower)
                weights = np.where(prev > value, weights, 0.0)
                prev = np.where(weights > 0.0, value, prev)
                continue
            cap = np.asarray(rec.score.cdf(np.minimum(prev, rec.upper)))
            weights = weights * cap
            # Draw from the score distribution truncated below ``prev``;
            # samples whose weight already collapsed to zero are inert.
            u = rng.random(samples) * np.where(cap > 0.0, cap, 1.0)
            prev = np.asarray(rec.score.ppf(u))
        last = prev
        chosen = set(idxs)
        for j, rec in enumerate(self.records):
            if j in chosen:
                continue
            weights = weights * np.asarray(rec.score.cdf(last))
        return clamp_probability(float(weights.mean()))

    def top_set_probability_cdf(self, record_set: Iterable, samples: int) -> float:
        """Low-variance top-k set estimator via the CDF product.

        Samples only the set members' scores and weights each draw by
        ``prod_{rest} F_j(min of members)``.
        """
        idxs = [self._resolve(r) for r in record_set]
        if len(set(idxs)) != len(idxs):
            raise QueryError("record set contains duplicates")
        if not idxs:
            return 1.0
        rng = self.rng
        cols = []
        for i in idxs:
            rec = self.records[i]
            if rec.is_deterministic:
                value = self._tie_values.get(rec.record_id, rec.lower)
                cols.append(np.full(samples, value))
            else:
                cols.append(rec.score.sample(rng, samples))
        inside_min = np.min(np.column_stack(cols), axis=1)
        weights = np.ones(samples)
        chosen = set(idxs)
        for j, rec in enumerate(self.records):
            if j in chosen:
                continue
            weights *= rec.score.cdf(inside_min)
        return clamp_probability(float(weights.mean()))

    def extension_probability(self, order: Sequence, samples: int) -> float:
        """Estimate a complete linear extension's probability (Eq. 4)."""
        idxs = [self._resolve(r) for r in order]
        if len(idxs) != len(self.records) or len(set(idxs)) != len(idxs):
            raise QueryError(
                "extension_probability needs a permutation of the database"
            )
        scores = self.sample_scores(samples)
        ordered = scores[:, idxs]
        ok = np.all(ordered[:, :-1] > ordered[:, 1:], axis=1)
        return clamp_probability(float(ok.mean()))

    # ------------------------------------------------------------------
    # empirical top-k state distributions (used by Fig. 14 and tests)
    # ------------------------------------------------------------------

    def empirical_top_prefixes(
        self, k: int, samples: int
    ) -> Dict[Tuple[str, ...], float]:
        """Frequencies of observed top-k prefixes among sampled rankings."""
        if k < 1:
            raise QueryError("k must be positive")
        k = min(k, len(self.records))
        rankings = self.sample_rankings(samples)
        counts: Dict[Tuple[str, ...], int] = {}
        ids = [rec.record_id for rec in self.records]
        for row in rankings[:, :k]:
            key = tuple(ids[i] for i in row)
            counts[key] = counts.get(key, 0) + 1
        return {key: c / samples for key, c in counts.items()}

    def empirical_top_sets(
        self, k: int, samples: int
    ) -> Dict[FrozenSet[str], float]:
        """Frequencies of observed top-k sets among sampled rankings."""
        if k < 1:
            raise QueryError("k must be positive")
        k = min(k, len(self.records))
        rankings = self.sample_rankings(samples)
        counts: Dict[FrozenSet[str], int] = {}
        ids = [rec.record_id for rec in self.records]
        for row in rankings[:, :k]:
            key = frozenset(ids[i] for i in row)
            counts[key] = counts.get(key, 0) + 1
        return {key: c / samples for key, c in counts.items()}
