"""k-dominance pruning (paper §VI-A, Lemma 1, Algorithm 2).

A record is *k-dominated* when at least ``k`` other records dominate it;
k-dominated records never occupy a rank ``<= k`` in any linear extension
(Lemma 1), so they can be removed before evaluating UTop-Rank(i, k) and
TOP-k queries.

:func:`shrink_database` is a faithful implementation of Algorithm 2: a
binary search over the list ``U`` of records in descending score-upper-
bound order, against ``t(k)``, the record with the k-th largest score
lower bound. The search finds the highest position ``pos*`` whose record
is dominated by ``t(k)``; everything at or below ``pos*`` is pruned. The
number of record accesses performed by the binary search is reported so
the logarithmic behaviour (paper Fig. 8) can be measured.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .errors import QueryError
from .ppo import ProbabilisticPartialOrder, dominates
from .records import UncertainRecord

__all__ = ["ShrinkResult", "upper_bound_list", "shrink_database", "k_dominated"]


def _descending_upper_key(rec: UncertainRecord):
    """Sort key for ``U``: descending upper bound, ties by tie-breaker."""
    return (-rec.upper, rec.record_id)


def upper_bound_list(records: Sequence[UncertainRecord]) -> List[UncertainRecord]:
    """The list ``U``: records in descending score-upper-bound order.

    The paper notes ``U`` can be precomputed for heavily used scoring
    functions; callers may therefore build it once and pass it to
    :func:`shrink_database` repeatedly.
    """
    return sorted(records, key=_descending_upper_key)


def _kth_largest_lower(
    records: Sequence[UncertainRecord], k: int
) -> UncertainRecord:
    """``t(k)``: the record with the k-th largest score lower bound.

    Found with a k-length heap in ``O(m log k)`` as in the paper; ties on
    the lower bound are resolved by the deterministic tie-breaker.
    """
    # heapq.nsmallest on the inverted key yields the top-k in order.
    top = heapq.nsmallest(k, records, key=lambda r: (-r.lower, r.record_id))
    return top[-1]


@dataclass
class ShrinkResult:
    """Outcome of Algorithm 2.

    Attributes
    ----------
    kept:
        Records surviving the prune, in their original order.
    removed:
        Number of records pruned.
    record_accesses:
        Records of ``U`` touched by the binary search (paper Fig. 8).
    pos_star:
        1-based position of the highest pruned record in ``U``
        (``len(U) + 1`` when nothing was pruned).
    pivot:
        The record ``t(k)`` used as the dominance pivot.
    """

    kept: List[UncertainRecord]
    removed: int
    record_accesses: int
    pos_star: int
    pivot: UncertainRecord

    @property
    def shrinkage(self) -> float:
        """Fraction of the database removed, in ``[0, 1]``."""
        total = len(self.kept) + self.removed
        return self.removed / total if total else 0.0


def shrink_database(
    records: Sequence[UncertainRecord],
    k: int,
    upper_list: Optional[Sequence[UncertainRecord]] = None,
) -> ShrinkResult:
    """Remove records dominated by ``t(k)`` (paper Algorithm 2).

    Parameters
    ----------
    records:
        The database ``D``.
    k:
        Dominance level; must satisfy ``1 <= k <= len(records)``.
    upper_list:
        Optional precomputed ``U`` (see :func:`upper_bound_list`).

    Returns
    -------
    ShrinkResult
        Pruned database plus search instrumentation.
    """
    if k < 1:
        raise QueryError(f"dominance level k must be positive (got {k})")
    if k > len(records):
        raise QueryError(
            f"dominance level k={k} exceeds database size {len(records)}"
        )
    u_list = (
        list(upper_list) if upper_list is not None else upper_bound_list(records)
    )
    pivot = _kth_largest_lower(records, k)

    start, end = 1, len(u_list)
    pos_star = len(u_list) + 1
    accesses = 0
    while start <= end:
        mid = (start + end) // 2
        candidate = u_list[mid - 1]
        accesses += 1
        if dominates(pivot, candidate):
            pos_star = mid
            end = mid - 1
        else:
            start = mid + 1

    # Soundness refinements over the paper's Algorithm 2 (both corners
    # involve boundary equalities the paper does not discuss):
    #
    # 1. Within a block of equal upper bounds, tie-broken deterministic
    #    records can make "dominated by the pivot" non-contiguous, so the
    #    suffix is filtered through the dominance predicate.
    # 2. When ``up_t == lo_(k)``, "t(k) dominates t" does NOT imply t is
    #    k-dominated: among the k records with the largest lower bounds,
    #    those deterministically tied at ``up_t`` may lose the tie-break
    #    against t and not dominate it. Records pruned via such a
    #    boundary equality are verified against their actual dominator
    #    count (Lemma 1's real criterion); strictly dominated records
    #    (``lo_(k) > up_t``) need no check, since all k top-lower-bound
    #    records then dominate them outright.
    suffix = [rec for rec in u_list[pos_star - 1 :] if dominates(pivot, rec)]
    strict = [rec for rec in suffix if pivot.lower > rec.upper]
    boundary = [rec for rec in suffix if pivot.lower <= rec.upper]
    if boundary:
        ppo = ProbabilisticPartialOrder(records)
        boundary = [
            rec for rec in boundary if ppo.dominator_count(rec) >= k
        ]
    pruned_ids = {rec.record_id for rec in strict + boundary}
    kept = [rec for rec in records if rec.record_id not in pruned_ids]
    return ShrinkResult(
        kept=kept,
        removed=len(pruned_ids),
        record_accesses=accesses,
        pos_star=pos_star,
        pivot=pivot,
    )


def k_dominated(
    records: Sequence[UncertainRecord], k: int
) -> List[UncertainRecord]:
    """All k-dominated records, by exact dominator counting (Lemma 1).

    Reference implementation used in tests to validate Algorithm 2's
    soundness: everything Algorithm 2 removes must appear in this list.
    Uses the PPO's ``O(n log n)`` dominator counts.
    """
    ppo = ProbabilisticPartialOrder(records)
    return [r for r in records if ppo.dominator_count(r) >= k]


def naive_k_dominated(
    records: Sequence[UncertainRecord], k: int
) -> List[UncertainRecord]:
    """Quadratic-time k-dominance check for cross-validation in tests."""
    out = []
    for rec in records:
        count = sum(1 for other in records if dominates(other, rec))
        if count >= k:
            out.append(rec)
    return out
