"""Rank aggregation over linear extensions (paper §VI-E, Theorem 2).

A Rank-Agg query asks for the ranking minimizing the expected distance to
the distribution of linear extensions. Under the Spearman footrule
distance the optimum is computable in polynomial time: build a bipartite
graph between records and ranks with edge weights

    w(t, r) = sum_j eta_j(t) * |j - r|

(Theorem 2: the per-rank probabilities ``eta`` are a sufficient summary of
the whole extension space) and take the minimum-cost perfect matching,
solved here with ``scipy.optimize.linear_sum_assignment``.

The module also provides the distance measures themselves and a
brute-force reference optimizer used by the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from .errors import QueryError
from .records import UncertainRecord

__all__ = [
    "footrule_distance",
    "kendall_tau_distance",
    "footrule_weights",
    "optimal_rank_aggregation",
    "empirical_rank_matrix",
    "kemeny_optimal",
]


def _positions(ranking: Sequence[str]) -> Dict[str, int]:
    pos = {rid: i for i, rid in enumerate(ranking)}
    if len(pos) != len(ranking):
        raise QueryError("ranking contains duplicate items")
    return pos


def footrule_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Spearman footrule distance ``F`` between two rankings (Eq. 8)."""
    pa, pb = _positions(a), _positions(b)
    if set(pa) != set(pb):
        raise QueryError("rankings must cover the same items")
    return sum(abs(pa[item] - pb[item]) for item in pa)


def kendall_tau_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Kendall tau distance: number of discordant pairs.

    Provided alongside footrule because the two are within a factor of
    two of each other (Diaconis–Graham), making footrule-optimal
    aggregation a 2-approximation for the (NP-hard) Kemeny optimum.
    """
    pa, pb = _positions(a), _positions(b)
    if set(pa) != set(pb):
        raise QueryError("rankings must cover the same items")
    items = list(pa)
    discordant = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            x, y = items[i], items[j]
            if (pa[x] - pa[y]) * (pb[x] - pb[y]) < 0:
                discordant += 1
    return discordant


def footrule_weights(rank_matrix: np.ndarray) -> np.ndarray:
    """Bipartite edge weights ``w(t, r)`` from a rank-probability matrix.

    ``rank_matrix[t, j]`` is ``eta_{j+1}(t)``; the result's ``[t, r]``
    entry is the expected footrule displacement of assigning record ``t``
    to rank ``r + 1`` (Theorem 2's weights, normalized by the voter
    count).
    """
    matrix = np.asarray(rank_matrix, dtype=float)
    n_records, n_ranks = matrix.shape
    ranks = np.arange(n_ranks)
    # displacement[j, r] = |j - r|
    displacement = np.abs(ranks[:, None] - ranks[None, :])
    return matrix @ displacement


def optimal_rank_aggregation(
    rank_matrix: np.ndarray,
    records: Sequence[UncertainRecord],
    tie_tolerance: float = 1e-9,
) -> Tuple[List[UncertainRecord], float]:
    """Footrule-optimal aggregate ranking (paper Theorem 2).

    Parameters
    ----------
    rank_matrix:
        ``(n, n)`` matrix of per-rank probabilities ``eta_r(t)`` (exact
        from :class:`~repro.core.exact.ExactEvaluator` or estimated from
        :class:`~repro.core.montecarlo.MonteCarloEvaluator`).
    records:
        Records in the same row order as the matrix.
    tie_tolerance:
        The footrule optimum is frequently non-unique (swapping two
        records with symmetric rank distributions leaves the cost
        unchanged), and ``linear_sum_assignment`` breaks such ties by
        row index — an order that is not stable under estimation noise
        in the matrix. Among rankings whose cost is within this
        tolerance of the optimum, the expected-rank ordering (record id
        as final tie-break) is preferred, so exact and sampled matrices
        of the same database canonicalize to the same consensus.
        Callers holding a sampled matrix should widen this to the
        sampling-noise scale (roughly ``n / sqrt(samples)``).

    Returns
    -------
    (ranking, cost):
        The optimal ranking (top first) and its expected footrule
        distance to the extension distribution (the returned ranking's
        own cost, within ``tie_tolerance`` of the true optimum).
    """
    matrix = np.asarray(rank_matrix, dtype=float)
    n = len(records)
    if matrix.shape != (n, n):
        raise QueryError(
            f"rank matrix must be square over all {n} records, got "
            f"{matrix.shape}"
        )
    weights = footrule_weights(matrix)
    rows, cols = linear_sum_assignment(weights)
    cost = float(weights[rows, cols].sum())
    expected = matrix @ np.arange(1.0, n + 1.0)
    order = sorted(
        range(n), key=lambda t: (expected[t], records[t].record_id)
    )
    canonical_cost = float(weights[order, np.arange(n)].sum())
    if canonical_cost <= cost + tie_tolerance:
        return [records[t] for t in order], canonical_cost
    ranking: List[Optional[UncertainRecord]] = [None] * n
    for t, r in zip(rows, cols):
        ranking[r] = records[t]
    assert all(rec is not None for rec in ranking)
    return [rec for rec in ranking if rec is not None], cost


def empirical_rank_matrix(
    rankings: Sequence[Sequence[str]],
    records: Sequence[UncertainRecord],
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Per-rank probabilities from an explicit list of voter rankings.

    Supports the classic rank-aggregation setting (paper Fig. 6): each
    voter contributes one full ranking, optionally weighted; the result
    feeds :func:`optimal_rank_aggregation`.
    """
    index = {rec.record_id: i for i, rec in enumerate(records)}
    n = len(records)
    if weights is None:
        weights = [1.0] * len(rankings)
    if len(weights) != len(rankings):
        raise QueryError("need one weight per ranking")
    matrix = np.zeros((n, n))
    total = 0.0
    for ranking, w in zip(rankings, weights):
        if w < 0:
            raise QueryError("ranking weights must be non-negative")
        if len(ranking) != n:
            raise QueryError("every ranking must cover all records")
        for pos, rid in enumerate(ranking):
            if rid not in index:
                raise QueryError(f"unknown record {rid!r} in ranking")
            matrix[index[rid], pos] += w
        total += w
    if total <= 0:
        raise QueryError("total ranking weight must be positive")
    return matrix / total


def kemeny_optimal(
    rankings: Sequence[Sequence[str]],
    weights: Optional[Sequence[float]] = None,
) -> Tuple[List[str], float]:
    """Exhaustive Kemeny-optimal aggregation (Kendall-tau objective).

    Kemeny aggregation is NP-hard, so this is factorial-time and only
    for small candidate sets; it exists because the Diaconis-Graham
    inequality makes the polynomial footrule optimum a 2-approximation
    of this optimum, and tests verify that relationship on real inputs.

    Returns the optimal ranking and its weighted mean Kendall distance.
    """
    import itertools

    if not rankings:
        raise QueryError("need at least one input ranking")
    if weights is None:
        weights = [1.0] * len(rankings)
    if len(weights) != len(rankings):
        raise QueryError("need one weight per ranking")
    items = sorted(rankings[0])
    for ranking in rankings:
        if sorted(ranking) != items:
            raise QueryError("rankings must cover the same items")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise QueryError("total ranking weight must be positive")
    best: Tuple[float, List[str]] = (float("inf"), [])
    for perm in itertools.permutations(items):
        candidate = list(perm)
        cost = (
            sum(
                w * kendall_tau_distance(candidate, list(r))
                for r, w in zip(rankings, weights)
            )
            / total_weight
        )
        if cost < best[0]:
            best = (cost, candidate)
    return best[1], best[0]


def brute_force_aggregation(
    rank_matrix: np.ndarray,
    records: Sequence[UncertainRecord],
) -> Tuple[List[UncertainRecord], float]:
    """Exhaustive reference optimizer (tests only; factorial time)."""
    import itertools

    weights = footrule_weights(np.asarray(rank_matrix, dtype=float))
    n = len(records)
    best_cost = float("inf")
    best_perm: Tuple[int, ...] = tuple(range(n))
    for perm in itertools.permutations(range(n)):
        cost = sum(weights[t, r] for r, t in enumerate(perm))
        if cost < best_cost:
            best_cost = cost
            best_perm = perm
    return [records[t] for t in best_perm], float(best_cost)
