"""Exact probability computation over the linear-extension space.

The paper evaluates its nested integrals (Eq. 4 for complete rankings,
Eq. 6 for k-length prefixes) with Monte-Carlo integration, including the
BASELINE algorithm it uses as ground truth. For the density families the
paper actually experiments with (uniform intervals and deterministic
scores), those integrals are *exactly computable*: every density and CDF
is a piecewise polynomial, and the backward recursion

    h_n+1(x) = 1  (or the CDF product of Eq. 6)
    h_j(x)   = int_{-inf}^{x} f_j(y) * h_j+1(y) dy

stays inside the piecewise-polynomial algebra of
:mod:`repro.core.piecewise`. This module implements that recursion plus
exact top-k set probabilities and exact per-rank probabilities (a
Poisson-binomial dynamic program over piecewise polynomials), giving the
reproduction a stronger ground truth than the paper had for its own
accuracy experiments (Fig. 9).

Deterministic scores are Dirac masses and are special-cased: identical
deterministic scores are separated by an infinitesimal perturbation
ordered by the tie-breaker ``tau``, which realizes the paper's tie
semantics as a limit.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from .budget import Budget
from .errors import EvaluationError, QueryError
from .piecewise import PiecewisePolynomial
from .records import UncertainRecord

__all__ = ["supports_exact", "ExactEvaluator"]


def supports_exact(records: Iterable[UncertainRecord]) -> bool:
    """Whether every record's density is exactly piecewise polynomial."""
    return all(
        rec.is_deterministic or rec.score.supports_exact for rec in records
    )


def _tie_perturbations(records: Sequence[UncertainRecord]) -> Dict[str, float]:
    """Perturbed values for deterministic records with equal scores.

    Groups of identical deterministic scores are spread over an
    infinitesimal ladder ordered by the tie-breaker (smaller record id
    ranks higher, hence receives the larger perturbed value). The ladder
    width is far below the smallest distinct gap in the data, so no other
    ordering relationship can flip.
    """
    groups: Dict[float, List[UncertainRecord]] = {}
    for rec in records:
        if rec.is_deterministic:
            groups.setdefault(rec.lower, []).append(rec)
    ties = {v: g for v, g in groups.items() if len(g) >= 2}
    if not ties:
        return {}
    bounds = sorted(
        {b for rec in records for b in (rec.lower, rec.upper)}
    )
    gaps = [b2 - b1 for b1, b2 in zip(bounds, bounds[1:]) if b2 > b1]
    scale = min(gaps) if gaps else max(1.0, abs(bounds[0]))
    out: Dict[str, float] = {}
    for value, group in ties.items():
        step = scale * 1e-7 / len(group)
        ordered = sorted(group, key=lambda r: r.record_id)  # tau order
        for pos, rec in enumerate(ordered):
            out[rec.record_id] = value + step * (len(group) - 1 - pos)
    return out


class ExactEvaluator:
    """Exact query-probability engine for piecewise-polynomial densities.

    Parameters
    ----------
    records:
        The database ``D``. Every record must either be deterministic or
        carry a density with an exact piecewise-polynomial form
        (:class:`~repro.core.distributions.UniformScore`,
        :class:`~repro.core.distributions.HistogramScore`,
        :class:`~repro.core.distributions.TriangularScore`, exact
        mixtures); otherwise construction raises
        :class:`~repro.core.errors.EvaluationError`. Smooth families can
        opt in via ``piecewise_approximation``.
    """

    def __init__(self, records: Sequence[UncertainRecord]) -> None:
        self.records = list(records)
        if not supports_exact(self.records):
            raise EvaluationError(
                "exact evaluation needs piecewise-polynomial densities; "
                "approximate smooth families first or use the Monte-Carlo "
                "evaluators"
            )
        self._by_id: Dict[str, UncertainRecord] = {}
        for rec in self.records:
            if rec.record_id in self._by_id:
                raise EvaluationError(
                    f"duplicate record id {rec.record_id!r}"
                )
            self._by_id[rec.record_id] = rec
        self._point_value = _tie_perturbations(self.records)
        # Deepest-seen eta matrix memo; see rank_probability_matrix.
        self._matrix: Optional[np.ndarray] = None
        self._pdf: Dict[str, Optional[PiecewisePolynomial]] = {}
        self._cdf: Dict[str, PiecewisePolynomial] = {}
        for rec in self.records:
            if rec.is_deterministic:
                self._pdf[rec.record_id] = None
                self._cdf[rec.record_id] = PiecewisePolynomial.step(
                    self._point(rec), 1.0
                )
            else:
                pdf = rec.score.pdf_piecewise()
                self._pdf[rec.record_id] = pdf
                self._cdf[rec.record_id] = pdf.antiderivative()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _point(self, rec: UncertainRecord) -> float:
        """Effective (tie-perturbed) value of a deterministic record."""
        return self._point_value.get(rec.record_id, rec.lower)

    def _resolve(self, rec_or_id) -> UncertainRecord:
        if isinstance(rec_or_id, UncertainRecord):
            rec = self._by_id.get(rec_or_id.record_id)
            if rec is None:
                raise QueryError(
                    f"record {rec_or_id.record_id!r} is not in this database"
                )
            return rec
        rec = self._by_id.get(rec_or_id)
        if rec is None:
            raise QueryError(f"record {rec_or_id!r} is not in this database")
        return rec

    def _push_through(
        self, rec: UncertainRecord, h: PiecewisePolynomial
    ) -> PiecewisePolynomial:
        """One backward-recursion step: ``h'(x) = int^x f(y) h(y) dy``."""
        if rec.is_deterministic:
            value = self._point(rec)
            return PiecewisePolynomial.step(value, max(h(value), 0.0))
        pdf = self._pdf[rec.record_id]
        assert pdf is not None
        return (pdf * h).antiderivative()

    # ------------------------------------------------------------------
    # linear-extension and prefix probabilities
    # ------------------------------------------------------------------

    def extension_probability(self, order: Sequence) -> float:
        """Probability of a complete linear extension (paper Eq. 4).

        ``order`` lists records (or ids) from top rank to bottom and must
        contain every record exactly once.
        """
        ordered = [self._resolve(r) for r in order]
        if len(ordered) != len(self.records) or len(
            {r.record_id for r in ordered}
        ) != len(self.records):
            raise QueryError(
                "extension_probability needs a permutation of the database"
            )
        h = PiecewisePolynomial.constant(1.0)
        for rec in reversed(ordered):
            if h.breakpoints.size == 0:
                # Constant h: seed the recursion with the record's CDF
                # scaled by the constant.
                h = self._cdf[rec.record_id] * h.right
            else:
                h = self._push_through(rec, self._compactify(h, rec))
        return min(max(h.right, 0.0), 1.0)

    def _compactify(
        self, h: PiecewisePolynomial, rec: UncertainRecord
    ) -> PiecewisePolynomial:
        """Make ``h`` usable by :meth:`_push_through` for ``rec``.

        ``h`` produced by previous steps has ``right`` equal to a constant
        plateau; multiplying by a pdf keeps compact support, so ``h`` can
        be used as-is. This hook exists to restrict very wide ``h`` to the
        record's support for efficiency.
        """
        if rec.is_deterministic:
            return h
        lo, up = rec.lower, rec.upper
        if h.breakpoints.size and (
            h.breakpoints[0] < lo or h.breakpoints[-1] > up
        ):
            restricted = h.restrict(lo, up)
            # Preserve the plateau value for x >= up: the pdf is zero
            # there, so only the in-window values matter to the product,
            # but the step-through for deterministic records evaluates at
            # points, which stay inside the window by construction.
            return restricted
        return h

    def prefix_probability(self, prefix: Sequence) -> float:
        """Probability of a k-length prefix (paper Eq. 6).

        ``prefix`` lists the top-k records in order; the CDF product of
        all remaining records forms the innermost factor.
        """
        ordered = [self._resolve(r) for r in prefix]
        ids = {r.record_id for r in ordered}
        if len(ids) != len(ordered):
            raise QueryError("prefix contains duplicate records")
        if not ordered:
            return 1.0
        h = PiecewisePolynomial.constant(1.0)
        rest = [r for r in self.records if r.record_id not in ids]
        for other in rest:
            h = h * self._cdf[other.record_id]
        for rec in reversed(ordered):
            if h.breakpoints.size == 0:
                h = self._cdf[rec.record_id] * h.right
            else:
                h = self._push_through(rec, h)
        return min(max(h.right, 0.0), 1.0)

    # ------------------------------------------------------------------
    # top-k set probability
    # ------------------------------------------------------------------

    def top_set_probability(self, record_set: Iterable) -> float:
        """Probability that ``record_set`` is exactly the top-k set.

        Equals ``Pr(min of the set > max of the rest)``; computed by
        integrating the density of the set's minimum against the CDF
        product of the complement.
        """
        members = [self._resolve(r) for r in record_set]
        ids = {r.record_id for r in members}
        if len(ids) != len(members):
            raise QueryError("record set contains duplicates")
        if not members:
            return 1.0
        rest = [r for r in self.records if r.record_id not in ids]
        outside = PiecewisePolynomial.constant(1.0)
        for other in rest:
            outside = outside * self._cdf[other.record_id]

        total = 0.0
        for rec in members:
            survival_product = PiecewisePolynomial.constant(1.0)
            for other in members:
                if other is rec:
                    continue
                survival_product = survival_product * (
                    1.0 - self._cdf[other.record_id]
                )
            if rec.is_deterministic:
                value = self._point(rec)
                total += max(survival_product(value), 0.0) * max(
                    outside(value), 0.0
                )
            else:
                pdf = self._pdf[rec.record_id]
                assert pdf is not None
                integrand = pdf * survival_product * outside
                total += integrand.integral()
        return min(max(total, 0.0), 1.0)

    # ------------------------------------------------------------------
    # per-rank probabilities (Poisson-binomial dynamic program)
    # ------------------------------------------------------------------

    def rank_probabilities(
        self,
        record: Union[UncertainRecord, str],
        max_rank: Optional[int] = None,
    ) -> np.ndarray:
        """``eta_r(t)`` for ``r = 1 .. max_rank`` (default: all ranks).

        ``eta_r(t)`` is the probability that exactly ``r - 1`` other
        records score above ``t``. Computed with a Poisson-binomial DP:
        processing the other records one by one, ``C[m](x)`` tracks the
        probability (as a function of ``t``'s score ``x``) that exactly
        ``m`` of the processed records exceed ``x``.
        """
        rec = self._resolve(record)
        n = len(self.records)
        limit = n if max_rank is None else min(max_rank, n)
        others = [r for r in self.records if r.record_id != rec.record_id]

        if rec.is_deterministic:
            # Scalar Poisson-binomial DP at the point score; mass moving
            # past rank ``limit`` simply leaves the reported window.
            x0 = self._point(rec)
            dp = np.zeros(limit)
            dp[0] = 1.0
            for other in others:
                win = float(
                    min(max(1.0 - self._cdf[other.record_id](x0), 0.0), 1.0)
                )
                new = dp * (1.0 - win)
                new[1:] += dp[:-1] * win
                dp = new
            return dp

        lo, up = rec.lower, rec.upper
        one = PiecewisePolynomial.box(lo, up, 1.0)
        dp: List[PiecewisePolynomial] = [one]
        zero = PiecewisePolynomial.zero()
        for other in others:
            cdf = self._cdf[other.record_id].restrict(lo, up)
            surv = one - cdf
            new: List[PiecewisePolynomial] = []
            width = min(len(dp) + 1, limit)
            for m in range(width):
                term = zero
                if m < len(dp):
                    term = term + dp[m] * cdf
                if 0 <= m - 1 < len(dp):
                    term = term + dp[m - 1] * surv
                new.append(term)
            dp = new
        pdf = self._pdf[rec.record_id]
        assert pdf is not None
        out = np.zeros(limit)
        for m, c_m in enumerate(dp):
            out[m] = max((pdf * c_m).integral(), 0.0)
        return out

    def rank_range_probability(
        self, record: Union[UncertainRecord, str], i: int, j: int
    ) -> float:
        """``Pr(t at rank in [i, j])`` — the exact Eq. 7 quantity."""
        if i < 1 or j < i:
            raise QueryError(f"invalid rank range [{i}, {j}]")
        probs = self.rank_probabilities(record, max_rank=j)
        return float(min(max(probs[i - 1 : j].sum(), 0.0), 1.0))

    def rank_probability_matrix(
        self,
        max_rank: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> np.ndarray:
        """Matrix ``M[t, r-1] = eta_r(t)`` over all records.

        Rows follow the database order of ``self.records``. This is the
        summary that drives exact rank aggregation (paper Theorem 2).

        The budget is polled between record rows. A half-computed exact
        matrix would misrepresent the remaining records, so exhaustion
        raises :class:`EvaluationError` (feeding the degradation ladder)
        rather than returning a partial answer.

        Unbudgeted calls memoize the matrix at the deepest ``max_rank``
        requested so far and serve shallower requests as column slices,
        which is exact: the Poisson-binomial recurrence fills entry
        ``m`` identically whatever the requested ``max_rank >= m + 1``
        is, so the sliced deep matrix is bit-identical to a directly
        computed shallow one. The memo is *not* eagerly full-depth —
        the DP cost grows with the rank window, and top-k queries only
        ever need a few columns. Budgeted calls bypass the memo both
        ways — they must poll the budget row by row, and a
        budget-truncated run must not poison later queries.
        """
        n = len(self.records)
        limit = n if max_rank is None else min(max_rank, n)
        if budget is None:
            if self._matrix is None or self._matrix.shape[1] < limit:
                stored = np.zeros((n, limit))
                for idx, rec in enumerate(self.records):
                    stored[idx] = self.rank_probabilities(
                        rec, max_rank=limit
                    )
                self._matrix = stored
            return self._matrix[:, :limit].copy()
        out = np.zeros((n, limit))
        for idx, rec in enumerate(self.records):
            if budget.expired():
                raise EvaluationError(
                    f"budget {budget.exhausted_reason()} after "
                    f"{idx} of {n} exact rank rows"
                )
            out[idx] = self.rank_probabilities(rec, max_rank=limit)
        return out

    # ------------------------------------------------------------------
    # pairwise probability (consistency entry point)
    # ------------------------------------------------------------------

    def probability_greater(
        self,
        a: Union[UncertainRecord, str],
        b: Union[UncertainRecord, str],
    ) -> float:
        """Exact ``Pr(a > b)`` via the piecewise algebra (Eq. 1)."""
        rec_a = self._resolve(a)
        rec_b = self._resolve(b)
        if rec_a.is_deterministic:
            value = self._point(rec_a)
            if rec_b.is_deterministic:
                return 1.0 if value > self._point(rec_b) else 0.0
            return float(
                min(max(self._cdf[rec_b.record_id](value), 0.0), 1.0)
            )
        if rec_b.is_deterministic:
            value = self._point(rec_b)
            return float(
                min(max(1.0 - self._cdf[rec_a.record_id](value), 0.0), 1.0)
            )
        pdf_a = self._pdf[rec_a.record_id]
        assert pdf_a is not None
        product = pdf_a * self._cdf[rec_b.record_id]
        return min(max(product.integral(), 0.0), 1.0)
